//! The ten lint rules and their source-level scanners.
//!
//! Each rule protects a proof technique (see `docs/LINTS.md`):
//! `det-order` keeps transcript-replay (bivalence/scenario) arguments
//! honest, `det-time` and `det-ambient` keep the adversary model airtight,
//! `det-float` keeps NaN out of the `Ord` discipline the engines rely on,
//! `hermetic-deps` keeps the offline build machine-checked, `doc-cite`
//! keeps rustdoc's strict-docs gate from regressing, and `map-coverage`
//! keeps `docs/PAPER_MAP.md` an exhaustive paper-to-module index. Two
//! item-aware soundness rules ride on [`crate::parse`]: `encode-coverage`
//! audits that every field/variant of a type with a hand-written `Encode`
//! impl (or `impl_encode_enum!` listing) is actually consumed — a skipped
//! field merges distinct states in the fingerprint visited set — and
//! `twin-drift` machine-enforces the zero-cost-twin contract from
//! `docs/OBS.md`: every `foo_traced` needs a sibling `foo` whose
//! signature matches modulo the tracer parameter. The file-set-level
//! `waiver-doc-sync` rule (in [`crate::walk`]) keeps the waiver
//! inventory in `docs/LINTS.md` machine-checked against the tree.

use crate::lex::{classify, waivers, ClassifiedLine, Waivers};
use crate::parse::{parse_file, FieldsShape, FileItems, FnSig, TypeDef, TypeKind};
use std::collections::BTreeMap;

/// The names of all ten rules, in reporting order.
pub const RULE_NAMES: [&str; 10] = [
    "det-order",
    "det-time",
    "det-ambient",
    "det-float",
    "hermetic-deps",
    "doc-cite",
    "map-coverage",
    "encode-coverage",
    "twin-drift",
    "waiver-doc-sync",
];

/// A single rustc-style finding: `path:line:col: deny(rule): message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation with the concrete offending token.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: deny({}): {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// Canonical single-line JSON encoding (same hand-built style as
    /// `PropertyReport::to_json` in `impossible-explore`): fixed key
    /// order `path, line, col, rule, message`, no whitespace.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(self.message.len() + self.path.len() + 64);
        s.push_str("{\"path\":");
        push_json_str(&mut s, &self.path);
        s.push_str(",\"line\":");
        s.push_str(&self.line.to_string());
        s.push_str(",\"col\":");
        s.push_str(&self.col.to_string());
        s.push_str(",\"rule\":");
        push_json_str(&mut s, self.rule);
        s.push_str(",\"message\":");
        push_json_str(&mut s, &self.message);
        s.push('}');
        s
    }
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `(rule, forbidden code patterns)` for the three determinism rules.
const DET_PATTERNS: [(&str, &[&str]); 3] = [
    ("det-order", &["HashMap", "HashSet"]),
    ("det-time", &["Instant::now", "SystemTime"]),
    (
        "det-ambient",
        &[
            "thread::spawn",
            "thread::scope",
            "std::process",
            "std::env",
            "env::var",
            "env::args",
        ],
    ),
];

fn det_message(rule: &str, pattern: &str) -> String {
    match rule {
        "det-order" => format!(
            "`{pattern}` iterates in hash order, which varies between runs and \
             silently invalidates transcript-replay arguments; use the ordered \
             `BTree` equivalent"
        ),
        "det-time" => format!(
            "wall-clock read `{pattern}` is a hidden nondeterminism source; \
             model time explicitly (timed executors) or keep timing in the \
             bench crates"
        ),
        _ => format!(
            "ambient authority `{pattern}` escapes the modeled schedule; all \
             nondeterminism must flow through the seeded `impossible-det` \
             adversary"
        ),
    }
}

/// Run the given *source-level* rules over one Rust file.
///
/// `rules` contains rule names from [`RULE_NAMES`]; unknown names and the
/// file-set-level `map-coverage` rule are ignored here (coverage is checked
/// by [`crate::walk::lint_workspace`], which sees the whole file set).
/// Scope decisions (which rules apply to which paths) are the caller's job
/// — see [`crate::walk::rules_for`] — which is what makes the rules
/// directly testable on fixture snippets.
pub fn lint_rust_source(path: &str, src: &str, rules: &[&str]) -> Vec<Diagnostic> {
    let lines = classify(src);
    let w = waivers(&lines);
    let mut out = Vec::new();

    for (rule, patterns) in DET_PATTERNS {
        if !rules.contains(&rule) {
            continue;
        }
        scan_code_patterns(path, &lines, &w, rule, patterns, &mut out);
    }
    if rules.contains(&"det-float") {
        scan_float_types(path, &lines, &w, &mut out);
    }
    if rules.contains(&"doc-cite") {
        scan_doc_citations(path, &lines, &w, &mut out);
    }
    if rules.contains(&"encode-coverage") || rules.contains(&"twin-drift") {
        let items = parse_file(&lines);
        if rules.contains(&"encode-coverage") {
            check_encode_coverage(path, &items, &w, &mut out);
        }
        if rules.contains(&"twin-drift") {
            check_twin_drift(path, &items, &w, &mut out);
        }
    }
    out.sort();
    out
}

/// `det-float`: `f32` / `f64` type mentions in engine/protocol code.
///
/// NaN is the one value that breaks the total-`Ord` discipline
/// `det-order` exists for (`NaN != NaN` poisons `BTreeMap` invariants,
/// sort stability, and canonical state comparison), and float rounding
/// makes "the same computation" platform-shaped. Fires on type mentions
/// (`: f64`, `as f64`, `f64::INFINITY`) and suffixed literals
/// (`0.5f64`); an *unsuffixed* literal passed to an integer-backed API
/// has no `f64` token and is fine. One diagnostic per line (leftmost).
fn scan_float_types(
    path: &str,
    lines: &[ClassifiedLine],
    w: &Waivers,
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let b = line.code.as_bytes();
        let hit = ["f32", "f64"]
            .iter()
            .filter_map(|p| {
                let mut from = 0;
                while let Some(pos) = line.code[from..].find(p) {
                    let k = from + pos;
                    let prev_ok = k == 0
                        || (!b[k - 1].is_ascii_alphabetic() && b[k - 1] != b'_');
                    let next = b.get(k + p.len());
                    let next_ok =
                        !next.is_some_and(|&n| n.is_ascii_alphanumeric() || n == b'_');
                    if prev_ok && next_ok {
                        return Some((k, *p));
                    }
                    from = k + p.len();
                }
                None
            })
            .min();
        if let Some((col, pattern)) = hit {
            if !w.allows(lineno, "det-float") {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    col: col + 1,
                    rule: "det-float",
                    message: format!(
                        "floating-point type `{pattern}` in an engine/protocol \
                         crate: NaN breaks the total-`Ord` state discipline and \
                         rounding is platform-shaped; use integer or fixed-point \
                         arithmetic (per-mille probabilities, `ilog2`/`isqrt` \
                         bounds) or waive with a reason"
                    ),
                });
            }
        }
    }
}

/// `encode-coverage`: every field/variant of a locally-defined type with
/// a hand-written `impl Encode` (or `impl_encode_enum!` listing) must be
/// consumed by the impl.
///
/// A skipped field compiles silently but makes two states that differ
/// only there fingerprint identically — the visited set then merges
/// them, and every downstream witness, valence verdict, and lasso is
/// built on an unsound state graph. A *missing enum variant* in
/// `impl_encode_enum!` is worse still: the generated chained `if let`
/// simply writes nothing for it, not even a tag.
fn check_encode_coverage(
    path: &str,
    items: &FileItems,
    w: &Waivers,
    out: &mut Vec<Diagnostic>,
) {
    // Local type definitions by name; names defined more than once in
    // the file (e.g. test-local shadows) are ambiguous — skip those.
    let mut defs: BTreeMap<&str, &TypeDef> = BTreeMap::new();
    let mut dup: Vec<&str> = Vec::new();
    for td in &items.types {
        if defs.insert(td.name.as_str(), td).is_some() {
            dup.push(td.name.as_str());
        }
    }
    for name in dup {
        defs.remove(name);
    }

    for im in &items.encode_impls {
        let Some(def) = defs.get(im.type_name.as_str()) else {
            continue; // type defined elsewhere (or ambiguous): out of scope
        };
        let mut missing: Vec<String> = Vec::new();
        match &def.kind {
            TypeKind::Struct(FieldsShape::Named(fields)) => {
                for f in fields {
                    if !im.body_idents.contains(f) {
                        missing.push(format!("field `{f}`"));
                    }
                }
            }
            TypeKind::Struct(FieldsShape::Tuple(n)) => {
                for idx in 0..*n {
                    if !im.self_fields.contains(&idx.to_string()) {
                        missing.push(format!("field `.{idx}`"));
                    }
                }
            }
            TypeKind::Struct(FieldsShape::Unit) => {}
            TypeKind::Enum(variants) => {
                for v in variants {
                    if !im.body_idents.contains(&v.name) {
                        missing.push(format!("variant `{}`", v.name));
                        continue;
                    }
                    if let FieldsShape::Named(fields) = &v.shape {
                        for f in fields {
                            if !im.body_idents.contains(f) {
                                missing.push(format!("field `{}::{f}`", v.name));
                            }
                        }
                    }
                }
            }
        }
        if !missing.is_empty() && !w.allows(im.line, "encode-coverage") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: im.line,
                col: im.col,
                rule: "encode-coverage",
                message: format!(
                    "`impl Encode for {}` does not consume {}: states \
                     differing only there fingerprint identically, silently \
                     merging distinct states in the visited set (collision \
                     soundness hole); encode it or waive with a reason",
                    im.type_name,
                    missing.join(", "),
                ),
            });
        }
    }

    for mac in &items.encode_macros {
        let Some(def) = defs.get(mac.type_name.as_str()) else {
            continue;
        };
        let TypeKind::Enum(variants) = &def.kind else {
            continue;
        };
        let listed: Vec<&str> = mac.entries.iter().map(|e| e.variant.as_str()).collect();
        let missing: Vec<String> = variants
            .iter()
            .filter(|v| !listed.contains(&v.name.as_str()))
            .map(|v| format!("`{}`", v.name))
            .collect();
        if !missing.is_empty() && !w.allows(mac.line, "encode-coverage") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: mac.line,
                col: mac.col,
                rule: "encode-coverage",
                message: format!(
                    "`impl_encode_enum!({} …)` is missing variant{} {}: the \
                     generated encoder writes *nothing* (not even a tag) for \
                     an unlisted variant, so such values collide with every \
                     other state (fingerprint soundness hole); list every \
                     variant with a distinct tag",
                    mac.type_name,
                    if missing.len() == 1 { "" } else { "s" },
                    missing.join(", "),
                ),
            });
        }
        // Duplicate tags un-prefix the variant encodings just as badly.
        let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
        for e in &mac.entries {
            if let Some(prev) = seen.insert(e.tag.as_str(), e.variant.as_str()) {
                if !w.allows(mac.line, "encode-coverage") {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line: mac.line,
                        col: mac.col,
                        rule: "encode-coverage",
                        message: format!(
                            "`impl_encode_enum!({} …)` assigns tag `{}` to both \
                             `{prev}` and `{}`: the tag is the only thing \
                             separating variant encodings, so duplicates merge \
                             the two variants' fingerprints",
                            mac.type_name, e.tag, e.variant,
                        ),
                    });
                }
            }
        }
    }
}

/// `twin-drift`: every `foo_traced` must have an untraced sibling `foo`
/// (same impl block / same file scope) whose signature matches modulo
/// the tracer parameter.
///
/// The zero-cost-twin contract (`docs/OBS.md`) is what lets callers mix
/// traced and untraced paths and expect identical behaviour; a drifted
/// twin means the untraced wrapper silently runs something else than
/// what the trace shows.
fn check_twin_drift(path: &str, items: &FileItems, w: &Waivers, out: &mut Vec<Diagnostic>) {
    let mut deny = |f: &FnSig, msg: String| {
        if !w.allows(f.line, "twin-drift") {
            out.push(Diagnostic {
                path: path.to_string(),
                line: f.line,
                col: f.col,
                rule: "twin-drift",
                message: msg,
            });
        }
    };
    for f in &items.fns {
        let Some(base) = f.name.strip_suffix("_traced").filter(|b| !b.is_empty()) else {
            continue;
        };
        let Some(twin) = items
            .fns
            .iter()
            .find(|t| t.name == base && t.owner == f.owner)
        else {
            deny(
                f,
                format!(
                    "`{}` has no untraced twin `{base}` in the same scope; the \
                     zero-cost-twin contract (docs/OBS.md) requires an untraced \
                     sibling whose signature matches modulo the tracer parameter",
                    f.name,
                ),
            );
            continue;
        };
        let reduced: Vec<&(String, String)> = f
            .params
            .iter()
            .filter(|(_, ty)| !ty.contains("Tracer"))
            .collect();
        if reduced.len() == f.params.len() {
            deny(
                f,
                format!(
                    "`{}` has no tracer parameter: a `_traced` twin must take \
                     a `&mut dyn Tracer` (or equivalent) that `{base}` omits",
                    f.name,
                ),
            );
            continue;
        }
        let drift = if f.receiver != twin.receiver {
            Some(format!(
                "receiver is `{}` but `{base}` takes `{}`",
                f.receiver, twin.receiver,
            ))
        } else if f.generics != twin.generics {
            Some(format!(
                "generics are `{}` but `{base}` has `{}`",
                f.generics, twin.generics,
            ))
        } else if f.ret != twin.ret {
            Some(format!(
                "returns `{}` but `{base}` returns `{}`",
                f.ret, twin.ret,
            ))
        } else if f.where_clause != twin.where_clause {
            Some(format!(
                "`where` clause `{}` differs from `{base}`'s `{}`",
                f.where_clause, twin.where_clause,
            ))
        } else if reduced.len() != twin.params.len() {
            Some(format!(
                "takes {} non-tracer parameter{} but `{base}` takes {}",
                reduced.len(),
                if reduced.len() == 1 { "" } else { "s" },
                twin.params.len(),
            ))
        } else {
            reduced
                .iter()
                .zip(&twin.params)
                .enumerate()
                .find(|(_, (a, b))| *a != b)
                .map(|(k, ((an, at), (bn, bt)))| {
                    format!(
                        "parameter {} is `{an}: {at}` but `{base}` has `{bn}: {bt}`",
                        k + 1,
                    )
                })
        };
        if let Some(what) = drift {
            deny(
                f,
                format!(
                    "`{}` drifts from its untraced twin `{base}`: {what}; the \
                     twins must stay signature-identical modulo the tracer \
                     parameter (docs/OBS.md)",
                    f.name,
                ),
            );
        }
    }
}

/// Emit at most one diagnostic per (line, rule): the leftmost match.
fn scan_code_patterns(
    path: &str,
    lines: &[ClassifiedLine],
    w: &Waivers,
    rule: &'static str,
    patterns: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let hit = patterns
            .iter()
            .filter_map(|p| line.code.find(p).map(|col| (col, *p)))
            .min();
        if let Some((col, pattern)) = hit {
            if !w.allows(lineno, rule) {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    col: col + 1,
                    rule,
                    message: det_message(rule, pattern),
                });
            }
        }
    }
}

/// `doc-cite`: bare `\[NN\]`-style citation brackets in rustdoc text.
///
/// Markdown treats `[54]` as a link reference, so rustdoc either renders a
/// broken link or (under `-D warnings` with strict lints) refuses the
/// build; the paper's citation style must be escaped. Skips fenced code
/// blocks, inline backtick spans, escaped brackets, and genuine link syntax
/// (`[54](…)` / `[54]: …`).
fn scan_doc_citations(
    path: &str,
    lines: &[ClassifiedLine],
    w: &Waivers,
    out: &mut Vec<Diagnostic>,
) {
    let mut in_fence = false;
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let text = strip_doc_marker(&line.doc);
        if text.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let masked = mask_backtick_spans(&line.doc);
        if let Some((col, cite)) = find_bare_citation(masked.as_bytes()) {
            if !w.allows(lineno, "doc-cite") {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    col: col + 1,
                    rule: "doc-cite",
                    message: format!(
                        "bare citation `{cite}` is parsed as a markdown link \
                         reference; escape it as `\\[…\\]`"
                    ),
                });
            }
        }
    }
}

/// Drop the `///` / `//!` / `*` gutter from a doc shadow line.
fn strip_doc_marker(doc: &str) -> &str {
    doc.trim_start()
        .trim_start_matches(['/', '!', '*'])
        .trim_start_matches(' ')
}

/// Blank out `` `…` `` spans so code-ish text can't look like a citation.
fn mask_backtick_spans(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut inside = false;
    for c in s.chars() {
        if c == '`' {
            inside = !inside;
            out.push(' ');
        } else {
            out.push(if inside { ' ' } else { c });
        }
    }
    out
}

/// Find the first bare `[NN]` / `[NN, MM]` citation in a masked doc line.
/// Returns `(byte_col0, matched_text)`.
fn find_bare_citation(s: &[u8]) -> Option<(usize, String)> {
    let mut k = 0;
    while k < s.len() {
        if s[k] == b'[' && (k == 0 || s[k - 1] != b'\\') {
            if let Some(end) = citation_end(s, k) {
                let followed_by = s.get(end + 1);
                if followed_by != Some(&b'(') && followed_by != Some(&b':') {
                    let text = String::from_utf8_lossy(&s[k..=end]).into_owned();
                    return Some((k, text));
                }
                k = end;
            }
        }
        k += 1;
    }
    None
}

/// If `s[open..]` is `[NN(, MM)*]`, return the index of the closing `]`.
fn citation_end(s: &[u8], open: usize) -> Option<usize> {
    let mut j = open + 1;
    if !s.get(j)?.is_ascii_digit() {
        return None;
    }
    while j < s.len() {
        match s[j] {
            b'0'..=b'9' => j += 1,
            b',' => {
                j += 1;
                while s.get(j) == Some(&b' ') {
                    j += 1;
                }
                if !s.get(j)?.is_ascii_digit() {
                    return None;
                }
            }
            b']' => return Some(j),
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_in_string_or_comment_is_silent() {
        let src = r#"
fn main() {
    let s = "HashMap here is data, not code";
    // HashMap in a comment is prose, not code
    /* HashSet too */
}
"#;
        assert!(lint_rust_source("x.rs", src, &["det-order"]).is_empty());
    }

    #[test]
    fn pattern_in_code_fires_with_column() {
        let src = "use std::collections::HashMap;\n";
        let d = lint_rust_source("x.rs", src, &["det-order"]);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].col), (1, 23));
    }

    #[test]
    fn citation_edge_cases() {
        assert!(find_bare_citation(b"see [54] for details").is_some());
        assert!(find_bare_citation(b"see [54, 82] for details").is_some());
        assert!(find_bare_citation(br"see \[54\] for details").is_none());
        assert!(find_bare_citation(b"see [54](https://x) link").is_none());
        assert!(find_bare_citation(b"[54]: https://x").is_none());
        assert!(find_bare_citation(b"index [i] and [54a]").is_none());
    }
}

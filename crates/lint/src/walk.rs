//! Workspace walking, per-path rule scoping, and the `map-coverage` rule.
//!
//! The walker visits `crates/**`, `src/**` and `tests/**` in sorted order
//! (the linter itself must be deterministic), skipping `target/` output and
//! the linter's own `fixtures/` (which contain deliberate violations).
//!
//! # Scope table
//!
//! Rules apply per-path; exceptions are *structural* (documented here and
//! in `docs/LINTS.md`), everything else needs an inline waiver:
//!
//! * `det-order` — everywhere except `crates/det` (hosts the seeded PRNG
//!   and its distribution tests), `crates/bench` (perf harness, not part of
//!   any modeled execution) and `crates/lint` (build-time tooling).
//! * `det-time` — everywhere except `crates/det/src/bench.rs` and
//!   `crates/bench` (the two sanctioned timer hosts) and `crates/lint`.
//! * `det-ambient` — everywhere except `crates/det/src/prop.rs` (the
//!   documented `DET_SEED` replay path) and `crates/lint` (the tool reads
//!   the file system and process arguments by design).
//! * `doc-cite` — every Rust file.
//! * `hermetic-deps` — every `Cargo.toml`.
//! * `map-coverage` — every `crates/*/src/**` module file except crate
//!   roots (`lib.rs`, `mod.rs`, `main.rs`).

use crate::lex::{classify, waivers};
use crate::manifest::lint_manifest;
use crate::rules::{lint_rust_source, Diagnostic};
use std::path::{Path, PathBuf};

/// Everything one `lint_workspace` pass saw and found.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All findings, sorted by `(path, line, col)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of Rust source files scanned.
    pub rust_files: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests: usize,
}

/// The source-level rules that apply to the workspace-relative path `rel`
/// (forward-slash separated). `map-coverage` is scoped separately by
/// [`in_map_scope`] because it needs the whole file set.
pub fn rules_for(rel: &str) -> Vec<&'static str> {
    let mut rules = Vec::new();
    let tooling = rel.starts_with("crates/lint/");
    let det_crate = rel.starts_with("crates/det/");
    let bench_crate = rel.starts_with("crates/bench/");

    if !tooling && !det_crate && !bench_crate {
        rules.push("det-order");
    }
    if !tooling && !bench_crate && rel != "crates/det/src/bench.rs" {
        rules.push("det-time");
    }
    if !tooling && rel != "crates/det/src/prop.rs" {
        rules.push("det-ambient");
    }
    rules.push("doc-cite");
    rules
}

/// Does `rel` need a `docs/PAPER_MAP.md` entry? Crate roots are exempt —
/// the map indexes *modules*, and a crate root is just the module list.
pub fn in_map_scope(rel: &str) -> bool {
    if !rel.starts_with("crates/") || !rel.ends_with(".rs") || !rel.contains("/src/") {
        return false;
    }
    let stem = rel
        .rsplit('/')
        .next()
        .unwrap_or_default()
        .trim_end_matches(".rs");
    !matches!(stem, "lib" | "mod" | "main")
}

/// `crates/core/src/valence.rs` → `core::valence` — the exact token the
/// map must contain for the file to count as covered.
pub fn module_token(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (krate, tail) = rest.split_once("/src/")?;
    let module = tail.trim_end_matches(".rs").replace('/', "::");
    Some(format!("{krate}::{module}"))
}

fn should_skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn collect(dir: &Path, want: &dyn Fn(&Path) -> bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !should_skip_dir(name) {
                collect(&path, want, out);
            }
        } else if want(&path) {
            out.push(path);
        }
    }
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run every rule over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> WorkspaceReport {
    let mut diagnostics = Vec::new();

    // Rust sources under the three scanned roots.
    let mut rust: Vec<PathBuf> = Vec::new();
    for sub in ["crates", "src", "tests"] {
        collect(
            &root.join(sub),
            &|p| p.extension().is_some_and(|e| e == "rs"),
            &mut rust,
        );
    }

    // Manifests: the workspace root plus every crate manifest.
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    collect(
        &root.join("crates"),
        &|p| p.file_name().is_some_and(|n| n == "Cargo.toml"),
        &mut manifests,
    );

    let map_src = std::fs::read_to_string(root.join("docs/PAPER_MAP.md")).unwrap_or_default();

    for path in &rust {
        let rel = rel_str(root, path);
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        diagnostics.extend(lint_rust_source(&rel, &src, &rules_for(&rel)));
        if in_map_scope(&rel) {
            let token = module_token(&rel).unwrap_or_default();
            if !map_src.contains(&token) {
                let w = waivers(&classify(&src));
                if !w.allows_file("map-coverage") {
                    diagnostics.push(Diagnostic {
                        path: rel.clone(),
                        line: 1,
                        col: 1,
                        rule: "map-coverage",
                        message: format!(
                            "module `{token}` is not indexed in docs/PAPER_MAP.md; \
                             add a row tying it to the paper (or waive with a \
                             reason)"
                        ),
                    });
                }
            }
        }
    }

    for path in &manifests {
        let rel = rel_str(root, path);
        if let Ok(src) = std::fs::read_to_string(path) {
            diagnostics.extend(lint_manifest(&rel, &src));
        }
    }

    diagnostics.sort();
    WorkspaceReport {
        diagnostics,
        rust_files: rust.len(),
        manifests: manifests.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_structural_exceptions() {
        // Engine crates get all det rules.
        let r = rules_for("crates/core/src/valence.rs");
        assert!(r.contains(&"det-order") && r.contains(&"det-time") && r.contains(&"det-ambient"));
        // The PRNG crate may use hash containers internally…
        assert!(!rules_for("crates/det/src/rng.rs").contains(&"det-order"));
        // …its bench timer may read the clock…
        assert!(!rules_for("crates/det/src/bench.rs").contains(&"det-time"));
        assert!(rules_for("crates/det/src/rng.rs").contains(&"det-time"));
        // …and only its DET_SEED replay path may read the environment.
        assert!(!rules_for("crates/det/src/prop.rs").contains(&"det-ambient"));
        assert!(rules_for("crates/det/src/rng.rs").contains(&"det-ambient"));
        // The bench harness is exempt from order/time, not ambient.
        let b = rules_for("crates/bench/benches/experiments.rs");
        assert!(!b.contains(&"det-order") && !b.contains(&"det-time"));
        assert!(b.contains(&"det-ambient"));
        // doc-cite applies everywhere, even to the linter itself.
        assert!(rules_for("crates/lint/src/lib.rs").contains(&"doc-cite"));
    }

    #[test]
    fn map_scope_and_tokens() {
        assert!(in_map_scope("crates/core/src/valence.rs"));
        assert!(in_map_scope("crates/sharedmem/src/algorithms/bakery.rs"));
        assert!(!in_map_scope("crates/core/src/lib.rs"));
        assert!(!in_map_scope("tests/determinism.rs"));
        assert_eq!(
            module_token("crates/sharedmem/src/algorithms/bakery.rs").unwrap(),
            "sharedmem::algorithms::bakery"
        );
    }
}

//! Workspace walking, per-path rule scoping, and the `map-coverage` rule.
//!
//! The walker visits `crates/**`, `src/**` and `tests/**` in sorted order
//! (the linter itself must be deterministic), skipping `target/` output and
//! the linter's own `fixtures/` (which contain deliberate violations).
//!
//! # Scope table
//!
//! Rules apply per-path; exceptions are *structural* (documented here and
//! in `docs/LINTS.md`), everything else needs an inline waiver:
//!
//! * `det-order` — everywhere except `crates/det` (hosts the seeded PRNG
//!   and its distribution tests), `crates/bench` (perf harness, not part of
//!   any modeled execution) and `crates/lint` (build-time tooling).
//! * `det-time` — everywhere except `crates/det/src/bench.rs` and
//!   `crates/bench` (the two sanctioned timer hosts) and `crates/lint`.
//! * `det-ambient` — everywhere except `crates/det/src/prop.rs` (the
//!   documented `DET_SEED` replay path) and `crates/lint` (the tool reads
//!   the file system and process arguments by design).
//! * `det-float` — `crates/**` only (binaries and integration tests under
//!   `src/` / `tests/` are drivers, not modeled state), minus the tooling
//!   exemptions above and minus the modules whose *subject matter* is a
//!   continuous quantity: `crates/clocksync/**` (drifting real-time
//!   clocks), `crates/msgpass/src/stretch.rs` (real-time shifting
//!   diagrams), `crates/registers/src/spec.rs` +
//!   `crates/registers/src/constructions.rs` (real-time atomicity specs),
//!   `crates/consensus/src/approx.rs` (approximate agreement over reals).
//! * `encode-coverage`, `twin-drift` — every Rust file (they only fire on
//!   locally-defined items, so scoping is structural already).
//! * `doc-cite` — every Rust file.
//! * `hermetic-deps` — every `Cargo.toml`.
//! * `map-coverage` — every `crates/*/src/**` module file except crate
//!   roots (`lib.rs`, `mod.rs`, `main.rs`).
//! * `waiver-doc-sync` — the whole tree against `docs/LINTS.md`.

use crate::lex::{classify, waiver_records, waivers};
use crate::manifest::{lint_manifest, manifest_waiver_records};
use crate::rules::{lint_rust_source, Diagnostic};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One row of the canonical waiver inventory: `(path, rule, count)`.
pub type WaiverRow = (String, String, usize);

/// Everything one `lint_workspace` pass saw and found.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All findings, sorted by `(path, line, col)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of Rust source files scanned.
    pub rust_files: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests: usize,
    /// The actual `LINT-ALLOW` inventory, sorted by `(path, rule)` —
    /// what `--list-waivers` prints and `waiver-doc-sync` checks
    /// `docs/LINTS.md` against.
    pub waivers: Vec<WaiverRow>,
}

/// The source-level rules that apply to the workspace-relative path `rel`
/// (forward-slash separated). `map-coverage` is scoped separately by
/// [`in_map_scope`] because it needs the whole file set.
pub fn rules_for(rel: &str) -> Vec<&'static str> {
    let mut rules = Vec::new();
    let tooling = rel.starts_with("crates/lint/");
    let det_crate = rel.starts_with("crates/det/");
    let bench_crate = rel.starts_with("crates/bench/");

    if !tooling && !det_crate && !bench_crate {
        rules.push("det-order");
    }
    if !tooling && !bench_crate && rel != "crates/det/src/bench.rs" {
        rules.push("det-time");
    }
    if !tooling && rel != "crates/det/src/prop.rs" {
        rules.push("det-ambient");
    }
    let float_exempt = !rel.starts_with("crates/")
        || tooling
        || det_crate
        || bench_crate
        || rel.starts_with("crates/clocksync/")
        || rel == "crates/msgpass/src/stretch.rs"
        || rel == "crates/registers/src/spec.rs"
        || rel == "crates/registers/src/constructions.rs"
        || rel == "crates/consensus/src/approx.rs";
    if !float_exempt {
        rules.push("det-float");
    }
    rules.push("doc-cite");
    rules.push("encode-coverage");
    rules.push("twin-drift");
    rules
}

/// Does `rel` need a `docs/PAPER_MAP.md` entry? Crate roots are exempt —
/// the map indexes *modules*, and a crate root is just the module list.
pub fn in_map_scope(rel: &str) -> bool {
    if !rel.starts_with("crates/") || !rel.ends_with(".rs") || !rel.contains("/src/") {
        return false;
    }
    let stem = rel
        .rsplit('/')
        .next()
        .unwrap_or_default()
        .trim_end_matches(".rs");
    !matches!(stem, "lib" | "mod" | "main")
}

/// `crates/core/src/valence.rs` → `core::valence` — the exact token the
/// map must contain for the file to count as covered.
pub fn module_token(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (krate, tail) = rest.split_once("/src/")?;
    let module = tail.trim_end_matches(".rs").replace('/', "::");
    Some(format!("{krate}::{module}"))
}

fn should_skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn collect(dir: &Path, want: &dyn Fn(&Path) -> bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !should_skip_dir(name) {
                collect(&path, want, out);
            }
        } else if want(&path) {
            out.push(path);
        }
    }
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run every rule over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> WorkspaceReport {
    let mut diagnostics = Vec::new();
    let mut inventory: BTreeMap<(String, String), usize> = BTreeMap::new();

    // Rust sources under the three scanned roots.
    let mut rust: Vec<PathBuf> = Vec::new();
    for sub in ["crates", "src", "tests"] {
        collect(
            &root.join(sub),
            &|p| p.extension().is_some_and(|e| e == "rs"),
            &mut rust,
        );
    }

    // Manifests: the workspace root plus every crate manifest.
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    collect(
        &root.join("crates"),
        &|p| p.file_name().is_some_and(|n| n == "Cargo.toml"),
        &mut manifests,
    );

    let map_src = std::fs::read_to_string(root.join("docs/PAPER_MAP.md")).unwrap_or_default();

    for path in &rust {
        let rel = rel_str(root, path);
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        diagnostics.extend(lint_rust_source(&rel, &src, &rules_for(&rel)));
        let lines = classify(&src);
        for rec in waiver_records(&lines) {
            for rule in &rec.rules {
                *inventory.entry((rel.clone(), rule.clone())).or_default() += 1;
            }
        }
        if in_map_scope(&rel) {
            let token = module_token(&rel).unwrap_or_default();
            if !map_src.contains(&token) {
                let w = waivers(&lines);
                if !w.allows_file("map-coverage") {
                    diagnostics.push(Diagnostic {
                        path: rel.clone(),
                        line: 1,
                        col: 1,
                        rule: "map-coverage",
                        message: format!(
                            "module `{token}` is not indexed in docs/PAPER_MAP.md; \
                             add a row tying it to the paper (or waive with a \
                             reason)"
                        ),
                    });
                }
            }
        }
    }

    for path in &manifests {
        let rel = rel_str(root, path);
        if let Ok(src) = std::fs::read_to_string(path) {
            diagnostics.extend(lint_manifest(&rel, &src));
            for rec in manifest_waiver_records(&src) {
                for rule in &rec.rules {
                    *inventory.entry((rel.clone(), rule.clone())).or_default() += 1;
                }
            }
        }
    }

    let waiver_rows: Vec<WaiverRow> = inventory
        .into_iter()
        .map(|((path, rule), count)| (path, rule, count))
        .collect();

    let lints_doc = std::fs::read_to_string(root.join("docs/LINTS.md")).unwrap_or_default();
    diagnostics.extend(check_waiver_doc_sync(
        &lints_doc,
        &waiver_rows,
        rust.len(),
        manifests.len(),
    ));

    diagnostics.sort();
    WorkspaceReport {
        diagnostics,
        rust_files: rust.len(),
        manifests: manifests.len(),
        waivers: waiver_rows,
    }
}

/// Render the canonical waiver inventory block (what `--list-waivers`
/// prints): the marker-fenced markdown table `docs/LINTS.md` must embed
/// verbatim, followed by the canonical clean-tree example output line.
pub fn render_waiver_inventory(
    rows: &[WaiverRow],
    rust_files: usize,
    manifests: usize,
) -> String {
    let mut s = String::new();
    s.push_str("<!-- waiver-inventory:begin -->\n");
    s.push_str("| File | Rule | Count |\n|---|---|---|\n");
    for (path, rule, count) in rows {
        s.push_str(&format!("| `{path}` | `{rule}` | {count} |\n"));
    }
    s.push_str("<!-- waiver-inventory:end -->\n");
    s.push_str(&format!(
        "\nimpossible-lint: {rust_files} source files + {manifests} manifests \
         checked, 0 violations\n"
    ));
    s
}

/// Parse one `| `path` | `rule` | N |` inventory row.
fn parse_inventory_row(line: &str) -> Option<WaiverRow> {
    let trimmed = line.trim();
    if !trimmed.starts_with('|') {
        return None;
    }
    let cells: Vec<&str> = trimmed
        .trim_matches('|')
        .split('|')
        .map(str::trim)
        .collect();
    if cells.len() != 3 {
        return None;
    }
    let count: usize = cells[2].parse().ok()?;
    Some((
        cells[0].trim_matches('`').to_string(),
        cells[1].trim_matches('`').to_string(),
        count,
    ))
}

/// Parse the scanned-file counts out of an
/// `impossible-lint: N source files + M manifests checked …` line.
fn parse_counts_line(line: &str) -> Option<(usize, usize)> {
    let rest = line.split("impossible-lint: ").nth(1)?;
    let (n, rest) = rest.split_once(" source files + ")?;
    let (m, _) = rest.split_once(" manifests checked")?;
    Some((n.trim().parse().ok()?, m.trim().parse().ok()?))
}

/// `waiver-doc-sync`: fail when `docs/LINTS.md` drifts from the tree.
///
/// The waiver inventory is the audit surface for every exception the
/// other rules granted; a stale inventory means a reviewer reading the
/// doc sees fewer (or different) exceptions than the code actually
/// carries. The doc embeds a marker-fenced table
/// (`<!-- waiver-inventory:begin/end -->`) plus an example output line
/// with the scanned-file counts; both must match reality and both are
/// regenerable verbatim via `--list-waivers`.
pub fn check_waiver_doc_sync(
    doc: &str,
    rows: &[WaiverRow],
    rust_files: usize,
    manifests: usize,
) -> Vec<Diagnostic> {
    let diag = |line: usize, message: String| Diagnostic {
        path: "docs/LINTS.md".to_string(),
        line,
        col: 1,
        rule: "waiver-doc-sync",
        message,
    };
    let mut out = Vec::new();

    let mut begin = None;
    let mut end = None;
    for (idx, l) in doc.lines().enumerate() {
        if l.contains("waiver-inventory:begin") && begin.is_none() {
            begin = Some(idx + 1);
        } else if l.contains("waiver-inventory:end") && end.is_none() {
            end = Some(idx + 1);
        }
    }
    match (begin, end) {
        (Some(b), Some(e)) if b < e => {
            let doc_rows: Vec<(usize, WaiverRow)> = doc
                .lines()
                .enumerate()
                .skip(b)
                .take(e - b - 1)
                .filter_map(|(idx, l)| parse_inventory_row(l).map(|r| (idx + 1, r)))
                .collect();
            for (lineno, (path, rule, count)) in &doc_rows {
                match rows.iter().find(|(p, r, _)| p == path && r == rule) {
                    None => out.push(diag(
                        *lineno,
                        format!(
                            "stale inventory row: the tree has no `{rule}` waiver \
                             in `{path}`; regenerate with `--list-waivers`"
                        ),
                    )),
                    Some((_, _, actual)) if actual != count => out.push(diag(
                        *lineno,
                        format!(
                            "inventory row for `{path}` / `{rule}` says {count} \
                             waiver{} but the tree has {actual}; regenerate with \
                             `--list-waivers`",
                            if *count == 1 { "" } else { "s" },
                        ),
                    )),
                    _ => {}
                }
            }
            for (path, rule, count) in rows {
                if !doc_rows.iter().any(|(_, (p, r, _))| p == path && r == rule) {
                    out.push(diag(
                        e,
                        format!(
                            "`{rule}` waiver{} in `{path}` (×{count}) missing \
                             from the inventory; regenerate with `--list-waivers`",
                            if *count == 1 { "" } else { "s" },
                        ),
                    ));
                }
            }
        }
        _ => out.push(diag(
            1,
            "docs/LINTS.md has no machine-checked waiver inventory (a \
             `<!-- waiver-inventory:begin -->` … `<!-- waiver-inventory:end -->` \
             fenced table); paste the `--list-waivers` output"
                .to_string(),
        )),
    }

    let mut saw_counts = false;
    for (idx, l) in doc.lines().enumerate() {
        if let Some((n, m)) = parse_counts_line(l) {
            saw_counts = true;
            if (n, m) != (rust_files, manifests) {
                out.push(diag(
                    idx + 1,
                    format!(
                        "example output line claims {n} source files + {m} \
                         manifests but the tree has {rust_files} + {manifests}; \
                         regenerate with `--list-waivers`"
                    ),
                ));
            }
        }
    }
    if !saw_counts {
        out.push(diag(
            1,
            "docs/LINTS.md has no `impossible-lint: N source files + M \
             manifests checked` example line; paste the one `--list-waivers` \
             prints"
                .to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_structural_exceptions() {
        // Engine crates get all det rules.
        let r = rules_for("crates/core/src/valence.rs");
        assert!(r.contains(&"det-order") && r.contains(&"det-time") && r.contains(&"det-ambient"));
        // The PRNG crate may use hash containers internally…
        assert!(!rules_for("crates/det/src/rng.rs").contains(&"det-order"));
        // …its bench timer may read the clock…
        assert!(!rules_for("crates/det/src/bench.rs").contains(&"det-time"));
        assert!(rules_for("crates/det/src/rng.rs").contains(&"det-time"));
        // …and only its DET_SEED replay path may read the environment.
        assert!(!rules_for("crates/det/src/prop.rs").contains(&"det-ambient"));
        assert!(rules_for("crates/det/src/rng.rs").contains(&"det-ambient"));
        // The bench harness is exempt from order/time, not ambient.
        let b = rules_for("crates/bench/benches/experiments.rs");
        assert!(!b.contains(&"det-order") && !b.contains(&"det-time"));
        assert!(b.contains(&"det-ambient"));
        // doc-cite applies everywhere, even to the linter itself.
        assert!(rules_for("crates/lint/src/lib.rs").contains(&"doc-cite"));
    }

    #[test]
    fn map_scope_and_tokens() {
        assert!(in_map_scope("crates/core/src/valence.rs"));
        assert!(in_map_scope("crates/sharedmem/src/algorithms/bakery.rs"));
        assert!(!in_map_scope("crates/core/src/lib.rs"));
        assert!(!in_map_scope("tests/determinism.rs"));
        assert_eq!(
            module_token("crates/sharedmem/src/algorithms/bakery.rs").unwrap(),
            "sharedmem::algorithms::bakery"
        );
    }
}

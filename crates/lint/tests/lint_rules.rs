//! Fixture tests pinning `impossible-lint` behaviour byte-for-byte.
//!
//! Each rule gets three guarantees: it fires at the exact expected
//! line/column, a `LINT-ALLOW` waiver (or a scope exception) suppresses
//! it, and matches inside strings or comments never fire. The fixtures
//! live in `tests/fixtures/`, which the workspace walker deliberately
//! skips — they contain violations on purpose.

use impossible_lint::lex::{classify, waivers};
use impossible_lint::manifest::lint_manifest;
use impossible_lint::walk::{in_map_scope, module_token};
use impossible_lint::{lint_rust_source, lint_workspace, rules_for};
use std::path::Path;

fn positions(diags: &[impossible_lint::Diagnostic]) -> Vec<(usize, usize)> {
    diags.iter().map(|d| (d.line, d.col)).collect()
}

#[test]
fn det_order_fires_at_exact_positions() {
    let src = include_str!("fixtures/det_order.rs");
    let d = lint_rust_source("fixtures/det_order.rs", src, &["det-order"]);
    // Line 1: the import; line 8: HashSet. Line 5 (string), line 3
    // (comment) stay silent; line 7 is waived by the comment on line 6.
    assert_eq!(positions(&d), vec![(1, 23), (8, 17)]);
    assert!(d.iter().all(|d| d.rule == "det-order"));
}

#[test]
fn det_time_fires_and_same_line_waiver_suppresses() {
    let src = include_str!("fixtures/det_time.rs");
    let d = lint_rust_source("fixtures/det_time.rs", src, &["det-time"]);
    // Only the Instant::now on line 2; the SystemTime on line 5 carries a
    // trailing same-line waiver, and lines 3–4 are comment/string text.
    assert_eq!(positions(&d), vec![(2, 24)]);
}

#[test]
fn det_ambient_fires_leftmost_and_waiver_covers_next_line() {
    let src = include_str!("fixtures/det_ambient.rs");
    let d = lint_rust_source("fixtures/det_ambient.rs", src, &["det-ambient"]);
    // Line 2 reports the leftmost pattern (`std::env`, not `env::args`);
    // lines 3–4 catch both thread entry points (`spawn` and scoped);
    // line 6 is covered by the comment-only waiver on line 5.
    assert_eq!(positions(&d), vec![(2, 29), (3, 10), (4, 10)]);
}

#[test]
fn pool_waiver_is_audited_and_load_bearing() {
    // The worker pool is the one place allowed to touch OS threads; its
    // `thread::scope` rides on exactly one reasoned waiver. Strip the
    // waiver and the rule must re-arm — i.e. the waiver is load-bearing,
    // not dead annotation.
    let src = include_str!("../../explore/src/pool.rs");
    let d = lint_rust_source("crates/explore/src/pool.rs", src, &["det-ambient"]);
    assert!(d.is_empty(), "pool.rs waiver stopped covering: {d:?}");
    assert_eq!(src.matches("LINT-ALLOW: det-ambient").count(), 1);
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("LINT-ALLOW"))
        .map(|l| format!("{l}\n"))
        .collect();
    let d = lint_rust_source("crates/explore/src/pool.rs", &stripped, &["det-ambient"]);
    assert!(
        d.iter().any(|d| d.message.contains("thread::scope")),
        "det-ambient no longer catches an un-waivered thread::scope"
    );
}

#[test]
fn scope_exception_suppresses_without_waivers() {
    // The same violating fixture, linted under the rule set of a path
    // that is structurally exempt from det-order (the PRNG crate), is
    // clean — scope exceptions need no inline waivers.
    let src = include_str!("fixtures/det_order.rs");
    let rules = rules_for("crates/det/src/rng.rs");
    assert!(!rules.contains(&"det-order"));
    let d = lint_rust_source("x.rs", src, &rules);
    assert!(d.iter().all(|d| d.rule != "det-order"));
    assert!(d.is_empty());
}

#[test]
fn doc_cite_fires_on_bare_citations_only() {
    let src = include_str!("fixtures/doc_cite.rs");
    let d = lint_rust_source("fixtures/doc_cite.rs", src, &["doc-cite"]);
    // Line 1: bare single citation; line 10: bare multi-citation. The
    // escaped and linked forms (line 3), the fenced block (line 6) and
    // the backtick span (line 8) stay silent.
    assert_eq!(positions(&d), vec![(1, 24), (10, 11)]);
    assert!(d[0].message.contains("[55]"));
    assert!(d[1].message.contains("[54, 82]"));
}

#[test]
fn hermetic_deps_fires_per_entry_and_honors_toml_waivers() {
    let src = include_str!("fixtures/hermetic_bad.toml");
    let d = lint_manifest("fixtures/hermetic_bad.toml", src);
    // serde (registry), rand (registry table), foo (subtable without a
    // path key); tokio on line 8 is waived by the `#` comment on line 7.
    assert_eq!(positions(&d), vec![(5, 1), (6, 1), (10, 1)]);
    assert!(d.iter().all(|d| d.rule == "hermetic-deps"));
    let names: Vec<_> = d
        .iter()
        .map(|d| d.message.split('`').nth(1).unwrap())
        .collect();
    assert_eq!(names, vec!["serde", "rand", "foo"]);
}

#[test]
fn hermetic_deps_accepts_path_and_workspace_deps() {
    let src = include_str!("fixtures/hermetic_good.toml");
    assert!(lint_manifest("fixtures/hermetic_good.toml", src).is_empty());
}

#[test]
fn map_coverage_scope_tokens_and_file_wide_waiver() {
    assert!(in_map_scope("crates/consensus/src/flp.rs"));
    assert!(!in_map_scope("crates/consensus/src/lib.rs"));
    assert!(!in_map_scope("src/bin/experiments.rs"));
    assert_eq!(
        module_token("crates/consensus/src/flp.rs").unwrap(),
        "consensus::flp"
    );
    // A file-wide waiver is what exempts an unmapped module.
    let src = "// LINT-ALLOW: map-coverage -- fixture: internal helper module\n";
    let w = waivers(&classify(src));
    assert!(w.allows_file("map-coverage"));
    let no_reason = "// LINT-ALLOW: map-coverage --\n";
    assert!(!waivers(&classify(no_reason)).allows_file("map-coverage"));
}

#[test]
fn det_float_fires_on_type_mentions_and_suffixed_literals() {
    let src = include_str!("fixtures/det_float.rs");
    let d = lint_rust_source("fixtures/det_float.rs", src, &["det-float"]);
    // Line 1: the `f64` parameter type; line 6: the `0.5f64` suffix.
    // Comment (2) and string (3) text never fire, line 5 is waived by
    // line 4, and `buf64` / `f64ish` (line 7) are not `f64` tokens.
    assert_eq!(positions(&d), vec![(1, 19), (6, 16)]);
    assert!(d.iter().all(|d| d.rule == "det-float"));
}

#[test]
fn det_float_scope_is_engine_crates_minus_continuous_subjects() {
    assert!(rules_for("crates/election/src/hs.rs").contains(&"det-float"));
    assert!(rules_for("crates/consensus/src/flp.rs").contains(&"det-float"));
    // Modules whose subject matter is a continuous quantity are
    // structurally exempt…
    assert!(!rules_for("crates/clocksync/src/lundelius.rs").contains(&"det-float"));
    assert!(!rules_for("crates/consensus/src/approx.rs").contains(&"det-float"));
    assert!(!rules_for("crates/msgpass/src/stretch.rs").contains(&"det-float"));
    assert!(!rules_for("crates/registers/src/spec.rs").contains(&"det-float"));
    // …as are tooling, bench, and the driver layers outside crates/.
    assert!(!rules_for("crates/bench/benches/experiments.rs").contains(&"det-float"));
    assert!(!rules_for("crates/lint/src/rules.rs").contains(&"det-float"));
    assert!(!rules_for("src/bin/experiments.rs").contains(&"det-float"));
    assert!(!rules_for("tests/property_based.rs").contains(&"det-float"));
}

#[test]
fn encode_coverage_audits_fields_variants_and_macro_listings() {
    let src = include_str!("fixtures/encode_coverage.rs");
    let d = lint_rust_source("fixtures/encode_coverage.rs", src, &["encode-coverage"]);
    // `Pair` skips a named field, `Tup` skips `.1`, `Mode` never matches
    // `Off`, and the `Tag` macro both duplicates a tag and omits `C`.
    // The blind `Waived` impl (line 28) is covered by the waiver above it.
    assert_eq!(
        positions(&d),
        vec![(5, 17), (11, 17), (20, 17), (39, 19), (39, 19)]
    );
    assert!(d.iter().all(|d| d.rule == "encode-coverage"));
    assert!(d[0].message.contains("field `b`"));
    assert!(d[1].message.contains("field `.1`"));
    assert!(d[2].message.contains("variant `Off`"));
    // The two macro findings sort by message: duplicate tag first.
    assert!(d[3].message.contains("tag `0`"));
    assert!(d[4].message.contains("missing variant `C`"));
}

#[test]
fn twin_drift_catches_orphans_missing_tracers_and_signature_drift() {
    let src = include_str!("fixtures/twin_drift.rs");
    let d = lint_rust_source("fixtures/twin_drift.rs", src, &["twin-drift"]);
    // `run`/`run_traced` match modulo the tracer and stay silent; the
    // waived orphan on line 23 is covered by the comment above it.
    assert_eq!(positions(&d), vec![(7, 8), (13, 8), (19, 8)]);
    assert!(d.iter().all(|d| d.rule == "twin-drift"));
    assert!(d[0].message.contains("no untraced twin `orphan`"));
    assert!(d[1].message.contains("no tracer parameter"));
    assert!(d[2].message.contains("returns `u64` but `drift` returns `u32`"));
}

#[test]
fn diagnostic_json_is_canonical_single_line() {
    let src = include_str!("fixtures/det_time.rs");
    let d = lint_rust_source("crates/x/src/y.rs", src, &["det-time"]);
    let json = d[0].to_json();
    // Fixed key order, no whitespace, one line — the same hand-built
    // style as `PropertyReport::to_json`.
    assert!(json.starts_with(
        "{\"path\":\"crates/x/src/y.rs\",\"line\":2,\"col\":24,\
         \"rule\":\"det-time\",\"message\":\""
    ));
    assert!(json.ends_with("\"}"));
    assert!(!json.contains('\n'));
    // Escaping is RFC 8259: quotes, backslashes, control characters.
    let spiky = impossible_lint::Diagnostic {
        path: "a\"b\\c.rs".to_string(),
        line: 3,
        col: 7,
        rule: "det-order",
        message: "tab\there".to_string(),
    };
    assert_eq!(
        spiky.to_json(),
        "{\"path\":\"a\\\"b\\\\c.rs\",\"line\":3,\"col\":7,\
         \"rule\":\"det-order\",\"message\":\"tab\\there\"}"
    );
}

#[test]
fn waiver_doc_sync_round_trips_and_catches_drift() {
    use impossible_lint::{check_waiver_doc_sync, render_waiver_inventory};
    let rows = vec![
        ("crates/a/src/x.rs".to_string(), "det-ambient".to_string(), 2),
        ("crates/b/Cargo.toml".to_string(), "hermetic-deps".to_string(), 1),
    ];
    let doc = render_waiver_inventory(&rows, 119, 14);
    assert!(check_waiver_doc_sync(&doc, &rows, 119, 14).is_empty());

    // A drifted count is pinned to the stale row's own line (begin
    // marker, header, separator, then the first data row = line 4).
    let stale = doc.replace("| 2 |", "| 5 |");
    let d = check_waiver_doc_sync(&stale, &rows, 119, 14);
    assert_eq!(d.len(), 1);
    assert_eq!((d[0].line, d[0].rule), (4, "waiver-doc-sync"));
    assert!(d[0].message.contains("says 5 waivers but the tree has 2"));

    // A waiver the doc does not list is reported at the end marker.
    let mut more = rows.clone();
    more.push(("crates/c/src/y.rs".to_string(), "det-order".to_string(), 1));
    let d = check_waiver_doc_sync(&doc, &more, 119, 14);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("missing from the inventory"));

    // Wrong scanned-file counts fail even with a perfect table.
    let d = check_waiver_doc_sync(&doc, &rows, 120, 14);
    assert_eq!(d.len(), 1);
    assert!(d[0].message.contains("claims 119 source files + 14 manifests"));

    // No inventory at all: one diagnostic for the missing table and one
    // for the missing example line.
    let d = check_waiver_doc_sync("# LINTS\n", &rows, 119, 14);
    assert_eq!(d.len(), 2);
}

#[test]
fn diagnostic_display_is_rustc_style() {
    let src = include_str!("fixtures/det_time.rs");
    let d = lint_rust_source("crates/x/src/y.rs", src, &["det-time"]);
    let line = d[0].to_string();
    assert!(line.starts_with("crates/x/src/y.rs:2:24: deny(det-time): "));
}

#[test]
fn workspace_is_clean() {
    // The live tree must stay at zero violations even when the verify
    // gate itself is bypassed: this is the lint-on-every-`cargo test`
    // backstop.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root);
    let msgs: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(msgs.is_empty(), "workspace lint violations:\n{}", msgs.join("\n"));
    assert!(report.rust_files > 100, "walker saw only {} files", report.rust_files);
    assert!(report.manifests >= 12, "walker saw only {} manifests", report.manifests);
    // The waiver inventory is collected alongside: it must contain the
    // known load-bearing exceptions.
    assert!(report
        .waivers
        .iter()
        .any(|(p, r, _)| p == "crates/explore/src/pool.rs" && r == "det-ambient"));
    assert!(report
        .waivers
        .iter()
        .any(|(p, r, _)| p == "crates/core/src/pigeonhole.rs" && r == "det-float"));
}

#[test]
fn verify_script_invokes_the_linter() {
    // Self-check: the tier-1 gate actually runs this tool with
    // violations promoted to hard failures.
    let script = include_str!("../../../scripts/verify.sh");
    assert!(
        script.contains("-p impossible-lint") && script.contains("--deny-all"),
        "scripts/verify.sh no longer runs `impossible-lint --deny-all`"
    );
    // The gate self-checks that the item-aware rules are actually wired
    // into the binary it runs (via `--help`), and guards the bench smoke
    // on its OK marker instead of trusting the exit code alone.
    for rule in ["det-float", "encode-coverage", "twin-drift", "waiver-doc-sync"] {
        assert!(
            script.contains(rule),
            "scripts/verify.sh no longer self-checks rule `{rule}`"
        );
    }
    assert!(
        script.contains("bench --check: OK"),
        "scripts/verify.sh no longer greps the bench smoke marker"
    );
}

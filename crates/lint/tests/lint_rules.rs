//! Fixture tests pinning `impossible-lint` behaviour byte-for-byte.
//!
//! Each rule gets three guarantees: it fires at the exact expected
//! line/column, a `LINT-ALLOW` waiver (or a scope exception) suppresses
//! it, and matches inside strings or comments never fire. The fixtures
//! live in `tests/fixtures/`, which the workspace walker deliberately
//! skips — they contain violations on purpose.

use impossible_lint::lex::{classify, waivers};
use impossible_lint::manifest::lint_manifest;
use impossible_lint::walk::{in_map_scope, module_token};
use impossible_lint::{lint_rust_source, lint_workspace, rules_for};
use std::path::Path;

fn positions(diags: &[impossible_lint::Diagnostic]) -> Vec<(usize, usize)> {
    diags.iter().map(|d| (d.line, d.col)).collect()
}

#[test]
fn det_order_fires_at_exact_positions() {
    let src = include_str!("fixtures/det_order.rs");
    let d = lint_rust_source("fixtures/det_order.rs", src, &["det-order"]);
    // Line 1: the import; line 8: HashSet. Line 5 (string), line 3
    // (comment) stay silent; line 7 is waived by the comment on line 6.
    assert_eq!(positions(&d), vec![(1, 23), (8, 17)]);
    assert!(d.iter().all(|d| d.rule == "det-order"));
}

#[test]
fn det_time_fires_and_same_line_waiver_suppresses() {
    let src = include_str!("fixtures/det_time.rs");
    let d = lint_rust_source("fixtures/det_time.rs", src, &["det-time"]);
    // Only the Instant::now on line 2; the SystemTime on line 5 carries a
    // trailing same-line waiver, and lines 3–4 are comment/string text.
    assert_eq!(positions(&d), vec![(2, 24)]);
}

#[test]
fn det_ambient_fires_leftmost_and_waiver_covers_next_line() {
    let src = include_str!("fixtures/det_ambient.rs");
    let d = lint_rust_source("fixtures/det_ambient.rs", src, &["det-ambient"]);
    // Line 2 reports the leftmost pattern (`std::env`, not `env::args`);
    // lines 3–4 catch both thread entry points (`spawn` and scoped);
    // line 6 is covered by the comment-only waiver on line 5.
    assert_eq!(positions(&d), vec![(2, 29), (3, 10), (4, 10)]);
}

#[test]
fn pool_waiver_is_audited_and_load_bearing() {
    // The worker pool is the one place allowed to touch OS threads; its
    // `thread::scope` rides on exactly one reasoned waiver. Strip the
    // waiver and the rule must re-arm — i.e. the waiver is load-bearing,
    // not dead annotation.
    let src = include_str!("../../explore/src/pool.rs");
    let d = lint_rust_source("crates/explore/src/pool.rs", src, &["det-ambient"]);
    assert!(d.is_empty(), "pool.rs waiver stopped covering: {d:?}");
    assert_eq!(src.matches("LINT-ALLOW: det-ambient").count(), 1);
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("LINT-ALLOW"))
        .map(|l| format!("{l}\n"))
        .collect();
    let d = lint_rust_source("crates/explore/src/pool.rs", &stripped, &["det-ambient"]);
    assert!(
        d.iter().any(|d| d.message.contains("thread::scope")),
        "det-ambient no longer catches an un-waivered thread::scope"
    );
}

#[test]
fn scope_exception_suppresses_without_waivers() {
    // The same violating fixture, linted under the rule set of a path
    // that is structurally exempt from det-order (the PRNG crate), is
    // clean — scope exceptions need no inline waivers.
    let src = include_str!("fixtures/det_order.rs");
    let rules = rules_for("crates/det/src/rng.rs");
    assert!(!rules.contains(&"det-order"));
    let d = lint_rust_source("x.rs", src, &rules);
    assert!(d.iter().all(|d| d.rule != "det-order"));
    assert!(d.is_empty());
}

#[test]
fn doc_cite_fires_on_bare_citations_only() {
    let src = include_str!("fixtures/doc_cite.rs");
    let d = lint_rust_source("fixtures/doc_cite.rs", src, &["doc-cite"]);
    // Line 1: bare single citation; line 10: bare multi-citation. The
    // escaped and linked forms (line 3), the fenced block (line 6) and
    // the backtick span (line 8) stay silent.
    assert_eq!(positions(&d), vec![(1, 24), (10, 11)]);
    assert!(d[0].message.contains("[55]"));
    assert!(d[1].message.contains("[54, 82]"));
}

#[test]
fn hermetic_deps_fires_per_entry_and_honors_toml_waivers() {
    let src = include_str!("fixtures/hermetic_bad.toml");
    let d = lint_manifest("fixtures/hermetic_bad.toml", src);
    // serde (registry), rand (registry table), foo (subtable without a
    // path key); tokio on line 8 is waived by the `#` comment on line 7.
    assert_eq!(positions(&d), vec![(5, 1), (6, 1), (10, 1)]);
    assert!(d.iter().all(|d| d.rule == "hermetic-deps"));
    let names: Vec<_> = d
        .iter()
        .map(|d| d.message.split('`').nth(1).unwrap())
        .collect();
    assert_eq!(names, vec!["serde", "rand", "foo"]);
}

#[test]
fn hermetic_deps_accepts_path_and_workspace_deps() {
    let src = include_str!("fixtures/hermetic_good.toml");
    assert!(lint_manifest("fixtures/hermetic_good.toml", src).is_empty());
}

#[test]
fn map_coverage_scope_tokens_and_file_wide_waiver() {
    assert!(in_map_scope("crates/consensus/src/flp.rs"));
    assert!(!in_map_scope("crates/consensus/src/lib.rs"));
    assert!(!in_map_scope("src/bin/experiments.rs"));
    assert_eq!(
        module_token("crates/consensus/src/flp.rs").unwrap(),
        "consensus::flp"
    );
    // A file-wide waiver is what exempts an unmapped module.
    let src = "// LINT-ALLOW: map-coverage -- fixture: internal helper module\n";
    let w = waivers(&classify(src));
    assert!(w.allows_file("map-coverage"));
    let no_reason = "// LINT-ALLOW: map-coverage --\n";
    assert!(!waivers(&classify(no_reason)).allows_file("map-coverage"));
}

#[test]
fn diagnostic_display_is_rustc_style() {
    let src = include_str!("fixtures/det_time.rs");
    let d = lint_rust_source("crates/x/src/y.rs", src, &["det-time"]);
    let line = d[0].to_string();
    assert!(line.starts_with("crates/x/src/y.rs:2:24: deny(det-time): "));
}

#[test]
fn workspace_is_clean() {
    // The live tree must stay at zero violations even when the verify
    // gate itself is bypassed: this is the lint-on-every-`cargo test`
    // backstop.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root);
    let msgs: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(msgs.is_empty(), "workspace lint violations:\n{}", msgs.join("\n"));
    assert!(report.rust_files > 80, "walker saw only {} files", report.rust_files);
    assert!(report.manifests >= 12, "walker saw only {} manifests", report.manifests);
}

#[test]
fn verify_script_invokes_the_linter() {
    // Self-check: the tier-1 gate actually runs this tool with
    // violations promoted to hard failures.
    let script = include_str!("../../../scripts/verify.sh");
    assert!(
        script.contains("-p impossible-lint") && script.contains("--deny-all"),
        "scripts/verify.sh no longer runs `impossible-lint --deny-all`"
    );
}

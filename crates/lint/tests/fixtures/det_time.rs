fn now() {
    let t = std::time::Instant::now();
    // SystemTime in a comment is prose.
    let s = "SystemTime";
    let epoch = std::time::SystemTime::UNIX_EPOCH; // LINT-ALLOW: det-time -- fixture: same-line waiver
}

use std::collections::HashMap;

// A HashMap mentioned in prose must not fire.
fn demo() {
    let s = "HashMap here is data";
    // LINT-ALLOW: det-order -- fixture: waiver on a comment-only line
    let waived = HashMap::new();
    let fired = HashSet::new();
}

pub fn run(sys: &Sys, steps: usize) -> Report {
    unimplemented!()
}
pub fn run_traced(sys: &Sys, steps: usize, tr: &mut dyn Tracer) -> Report {
    unimplemented!()
}
pub fn orphan_traced(tr: &mut dyn Tracer) -> u32 {
    0
}
pub fn plain(x: u32) -> u32 {
    x
}
pub fn plain_traced(x: u32) -> u32 {
    x
}
pub fn drift(x: u32) -> u32 {
    x
}
pub fn drift_traced(x: u32, tr: &mut dyn Tracer) -> u64 {
    0
}
// LINT-ALLOW: twin-drift -- fixture: intentionally waived orphan
pub fn waived_traced(tr: &mut dyn Tracer) -> u32 {
    0
}

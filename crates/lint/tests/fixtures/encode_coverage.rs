pub struct Pair {
    a: u32,
    b: u32,
}
impl Encode for Pair {
    fn encode(&self, h: &mut FpHasher) {
        h.write_u32(self.a);
    }
}
pub struct Tup(u8, u16);
impl Encode for Tup {
    fn encode(&self, h: &mut FpHasher) {
        h.write_u8(self.0);
    }
}
pub enum Mode {
    Off,
    On { level: u8 },
}
impl Encode for Mode {
    fn encode(&self, h: &mut FpHasher) {
        if let Mode::On { level } = self {
            h.write_u8(*level);
        }
    }
}
// LINT-ALLOW: encode-coverage -- fixture: deliberately blind, waived
impl Encode for Waived {
    fn encode(&self, _h: &mut FpHasher) {}
}
pub struct Waived {
    z: u8,
}
pub enum Tag {
    A,
    B,
    C,
}
impl_encode_enum!(Tag {
    0: A,
    0: B,
});

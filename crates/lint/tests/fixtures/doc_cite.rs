//! Module docs citing [55] bare.
//!
//! Escaped \[54\] is fine; linked [54](https://example.org) too.
//!
//! ```text
//! [99] inside a fence is code, not prose.
//! ```
//! A `[77]` in backticks is code.

/// Cites [54, 82] in a doc comment.
fn documented() {}

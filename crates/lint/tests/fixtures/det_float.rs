pub fn curve(eps: f64) -> u64 {
    // f64 in a comment stays silent
    let s = "f32 in a string stays silent";
    // LINT-ALLOW: det-float -- fixture: waived cast on the next line
    let w = eps as f32;
    let x = 0.5f64;
    let buf64 = 0u64; let f64ish = buf64;
    let _ = (s, w, x, f64ish);
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    std::thread::spawn(|| {});
    std::thread::scope(|_s| {});
    // LINT-ALLOW: det-ambient -- fixture: waiver covers the next line
    let v = std::env::var("HOME");
}

//! # impossible-registers
//!
//! Shared registers and wait-free synchronization — §2.3 of Lynch's survey.
//!
//! * [`spec`] — operation histories and semantic checkers: linearizability
//!   (atomicity), regularity and safeness, each returning a witness
//!   ordering or the reason none exists.
//! * [`constructions`] — register constructions: safe→regular,
//!   regular→atomic (single reader, timestamps), and Lamport's theorem \[71\]
//!   that multi-reader atomicity *requires readers to write* — shown by
//!   refuting the no-reader-write candidate with a concrete new/old
//!   inversion, then verifying the reader-writes construction.
//! * [`herlihy`] — the consensus hierarchy \[65\]: wait-free consensus
//!   protocols over shared objects as transition systems. Test-and-set
//!   solves 2-process consensus (verified exhaustively), compare-and-swap
//!   solves n-process consensus, and the register-only / 3-process-TAS
//!   candidates are refuted through the same bivalence engine as FLP —
//!   "reducibilities show its utility in proving that some kinds of objects
//!   can't be implemented in terms of other kinds".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constructions;
pub mod herlihy;
pub mod spec;

pub use spec::{check_linearizable, History, Op, OpKind};

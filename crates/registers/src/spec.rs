//! Operation histories and register semantics.
//!
//! The three register grades of Lamport \[71\]:
//!
//! * **safe** — a read not overlapping any write returns the latest written
//!   value; an overlapping read may return anything;
//! * **regular** — an overlapping read returns the old or one of the
//!   overlapping new values;
//! * **atomic** — the whole history is *linearizable*: some total order of
//!   the operations respects real time and register semantics.
//!
//! [`check_linearizable`] searches for a linearization (with memoized DFS);
//! [`check_regular`] and [`check_safe`] validate single-writer histories
//! against the weaker grades. The checkers return concrete witnesses,
//! because the constructions in [`crate::constructions`] are *judged* by
//! them.

use std::collections::BTreeSet;

/// The kind of a register operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read returning the attached value.
    Read,
    /// A write storing the attached value.
    Write,
}

/// One complete operation in a history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// Executing process.
    pub process: usize,
    /// Read or write.
    pub kind: OpKind,
    /// Value written / returned.
    pub value: u64,
    /// Invocation time.
    pub invoke: f64,
    /// Response time (must exceed `invoke`).
    pub respond: f64,
}

impl Op {
    /// A read by `process` returning `value` over `[invoke, respond]`.
    pub fn read(process: usize, value: u64, invoke: f64, respond: f64) -> Self {
        assert!(invoke < respond);
        Op {
            process,
            kind: OpKind::Read,
            value,
            invoke,
            respond,
        }
    }

    /// A write by `process` of `value` over `[invoke, respond]`.
    pub fn write(process: usize, value: u64, invoke: f64, respond: f64) -> Self {
        assert!(invoke < respond);
        Op {
            process,
            kind: OpKind::Write,
            value,
            invoke,
            respond,
        }
    }

    fn precedes(&self, other: &Op) -> bool {
        self.respond < other.invoke
    }

    fn overlaps(&self, other: &Op) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// A complete history over a single register.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// The operations (any order).
    pub ops: Vec<Op>,
    /// The register's initial value.
    pub initial: u64,
}

impl History {
    /// A history with initial value 0.
    pub fn new() -> Self {
        History::default()
    }

    /// Builder: add an operation.
    pub fn with(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }
}

/// A linearization witness: indices into `history.ops` in linearized order.
pub type Linearization = Vec<usize>;

/// Search for a linearization of `history`. `Some(order)` is the witness;
/// `None` means the history is **not atomic** (e.g. a new/old inversion).
pub fn check_linearizable(history: &History) -> Option<Linearization> {
    let n = history.ops.len();
    let ops = &history.ops;
    // DFS over (linearized-set, current value); memoize failures.
    fn dfs(
        ops: &[Op],
        done: &mut Vec<bool>,
        done_count: usize,
        value: u64,
        order: &mut Vec<usize>,
        failed: &mut BTreeSet<(Vec<bool>, u64)>,
    ) -> bool {
        if done_count == ops.len() {
            return true;
        }
        let key = (done.clone(), value);
        if failed.contains(&key) {
            return false;
        }
        for i in 0..ops.len() {
            if done[i] {
                continue;
            }
            // Real-time constraint: i may linearize next only if no
            // not-yet-linearized op finished before i was invoked.
            let blocked = (0..ops.len())
                .any(|j| !done[j] && j != i && ops[j].precedes(&ops[i]));
            if blocked {
                continue;
            }
            // Semantics.
            let next_value = match ops[i].kind {
                OpKind::Read => {
                    if ops[i].value != value {
                        continue;
                    }
                    value
                }
                OpKind::Write => ops[i].value,
            };
            done[i] = true;
            order.push(i);
            if dfs(ops, done, done_count + 1, next_value, order, failed) {
                return true;
            }
            done[i] = false;
            order.pop();
        }
        failed.insert(key);
        false
    }

    let mut done = vec![false; n];
    let mut order = Vec::new();
    let mut failed = BTreeSet::new();
    dfs(
        ops,
        &mut done,
        0,
        history.initial,
        &mut order,
        &mut failed,
    )
    .then_some(order)
}

/// A violation of the weaker grades, with the offending read.
#[derive(Debug, Clone, PartialEq)]
pub struct GradeViolation {
    /// Index of the offending read in `history.ops`.
    pub read: usize,
    /// The values that would have been legal.
    pub allowed: Vec<u64>,
}

/// Check single-writer **regularity**: every read returns the latest write
/// preceding it or some overlapping write.
pub fn check_regular(history: &History) -> Result<(), GradeViolation> {
    check_grade(history, true)
}

/// Check single-writer **safeness**: only reads that overlap no write are
/// constrained (to the latest preceding write).
pub fn check_safe(history: &History) -> Result<(), GradeViolation> {
    check_grade(history, false)
}

fn check_grade(history: &History, regular: bool) -> Result<(), GradeViolation> {
    let writes: Vec<&Op> = history
        .ops
        .iter()
        .filter(|o| o.kind == OpKind::Write)
        .collect();
    for (idx, read) in history.ops.iter().enumerate() {
        if read.kind != OpKind::Read {
            continue;
        }
        let overlapping: Vec<u64> = writes
            .iter()
            .filter(|w| w.overlaps(read))
            .map(|w| w.value)
            .collect();
        // Latest write completing before the read starts.
        let preceding = writes
            .iter()
            .filter(|w| w.precedes(read))
            .max_by(|a, b| a.respond.partial_cmp(&b.respond).expect("finite"))
            .map(|w| w.value)
            .unwrap_or(history.initial);
        let mut allowed = vec![preceding];
        if regular || overlapping.is_empty() {
            allowed.extend(&overlapping);
        } else {
            // Safe register: overlapping reads are unconstrained.
            continue;
        }
        if !allowed.contains(&read.value) {
            return Err(GradeViolation {
                read: idx,
                allowed,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_history_is_linearizable() {
        let h = History::new()
            .with(Op::write(0, 5, 0.0, 1.0))
            .with(Op::read(1, 5, 2.0, 3.0))
            .with(Op::write(0, 7, 4.0, 5.0))
            .with(Op::read(1, 7, 6.0, 7.0));
        assert!(check_linearizable(&h).is_some());
    }

    #[test]
    fn overlapping_read_may_return_either() {
        // Write of 9 overlaps a read: returning old (0) or new (9) both OK.
        for v in [0u64, 9] {
            let h = History::new()
                .with(Op::write(0, 9, 1.0, 3.0))
                .with(Op::read(1, v, 2.0, 4.0));
            assert!(check_linearizable(&h).is_some(), "value {v}");
        }
    }

    #[test]
    fn new_old_inversion_is_not_linearizable() {
        // Two sequential reads during one long write: new then old — the
        // exact pattern regular registers allow and atomic ones forbid.
        let h = History::new()
            .with(Op::write(0, 1, 0.0, 10.0))
            .with(Op::read(1, 1, 1.0, 2.0)) // new
            .with(Op::read(1, 0, 3.0, 4.0)); // old, after new: inversion
        assert!(check_linearizable(&h).is_none());
        // But it IS regular: both reads overlap the write.
        assert!(check_regular(&h).is_ok());
    }

    #[test]
    fn stale_read_violates_even_regularity() {
        let h = History::new()
            .with(Op::write(0, 4, 0.0, 1.0))
            .with(Op::read(1, 0, 2.0, 3.0)); // returns initial after write done
        assert!(check_linearizable(&h).is_none());
        let err = check_regular(&h).unwrap_err();
        assert_eq!(err.read, 1);
        assert_eq!(err.allowed, vec![4]);
    }

    #[test]
    fn safe_register_allows_garbage_only_during_overlap() {
        let overlapping_garbage = History::new()
            .with(Op::write(0, 1, 1.0, 3.0))
            .with(Op::read(1, 77, 2.0, 4.0));
        assert!(check_safe(&overlapping_garbage).is_ok());
        assert!(check_regular(&overlapping_garbage).is_err());

        let quiet_garbage = History::new()
            .with(Op::write(0, 1, 0.0, 1.0))
            .with(Op::read(1, 77, 2.0, 3.0));
        assert!(check_safe(&quiet_garbage).is_err());
    }

    #[test]
    fn linearization_witness_is_valid_order() {
        let h = History::new()
            .with(Op::write(0, 3, 0.0, 5.0))
            .with(Op::read(1, 0, 1.0, 2.0)) // old value while write pending
            .with(Op::read(1, 3, 6.0, 7.0));
        let order = check_linearizable(&h).expect("linearizable");
        assert_eq!(order.len(), 3);
        // The old read must come before the write in the witness.
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn concurrent_writers_interleave() {
        let h = History::new()
            .with(Op::write(0, 1, 0.0, 4.0))
            .with(Op::write(1, 2, 1.0, 3.0))
            .with(Op::read(2, 1, 5.0, 6.0));
        // Legal: linearize write(2) then write(1).
        assert!(check_linearizable(&h).is_some());
    }
}

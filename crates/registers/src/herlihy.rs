//! The consensus hierarchy \[65\], executable.
//!
//! Herlihy connected wait-free implementability to consensus: registers
//! cannot solve 2-process wait-free consensus, test-and-set and FIFO queues
//! solve exactly 2, compare-and-swap solves any `n`. The engine here is the
//! same bivalence machinery as FLP (Loui–Abu-Amara \[76\] did exactly this
//! transfer — "the similarity between the ideas used in these two settings
//! reinforces my intuition that there is an awful lot that is fundamentally
//! the same").
//!
//! [`ObjectProtocol`] expresses a wait-free consensus protocol over typed
//! shared objects; [`ObjectSystem`] compiles it to a transition system;
//! [`consensus_verdict`] checks agreement and validity through the valence
//! engine and wait-freedom through bounded solo runs. The verified
//! protocols ([`TasConsensus2`], [`QueueConsensus2`], [`CasConsensus`])
//! and refuted candidates ([`RegisterMin2`], [`RegisterWait2`],
//! [`TasConsensus3`]) trace out the hierarchy's first levels.

use impossible_core::ids::ProcessId;
use impossible_core::system::{DecisionSystem, System};
use impossible_explore::{Encode, FpHasher, Search};
use std::fmt::Debug;
use std::hash::Hash;

/// Sentinel for "empty register / queue".
pub const EMPTY: u64 = u64::MAX;

/// A typed shared object with its initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectSpec {
    /// Read/write register.
    Register {
        /// Initial value.
        init: u64,
    },
    /// Test-and-set bit (0 = unset).
    TestAndSet,
    /// Compare-and-swap cell.
    CompareAndSwap {
        /// Initial value.
        init: u64,
    },
    /// FIFO queue.
    FifoQueue {
        /// Initial contents, front first.
        init: Vec<u64>,
    },
}

/// An operation on a shared object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjOp {
    /// Read a register (response: the value).
    Read,
    /// Write a register (response: 0).
    Write(u64),
    /// Test-and-set (response: the *old* value; sets to 1).
    TestAndSet,
    /// Compare-and-swap (response: 1 on success, 0 on failure).
    CompareAndSwap {
        /// Expected value.
        expect: u64,
        /// Replacement on match.
        new: u64,
    },
    /// Enqueue (response: 0).
    Enqueue(u64),
    /// Dequeue (response: front item, or [`EMPTY`]).
    Dequeue,
}

/// A wait-free consensus protocol over shared objects.
pub trait ObjectProtocol {
    /// Per-process local state.
    type Local: Clone + Eq + Ord + Hash + Debug;

    /// Number of processes.
    fn n(&self) -> usize;

    /// The shared objects.
    fn objects(&self) -> Vec<ObjectSpec>;

    /// Initial local state with `input`.
    fn init(&self, i: usize, input: u64) -> Self::Local;

    /// The next operation (object index, op), or `None` once halted.
    fn next_op(&self, i: usize, local: &Self::Local) -> Option<(usize, ObjOp)>;

    /// Consume the response of the op returned by [`Self::next_op`].
    fn on_response(&self, i: usize, local: &Self::Local, response: u64) -> Self::Local;

    /// The decision, if made.
    fn decision(&self, local: &Self::Local) -> Option<u64>;
}

/// Global configuration of an [`ObjectSystem`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjState<L> {
    /// Per-process locals.
    pub locals: Vec<L>,
    /// Object states (registers/TAS/CAS use index 0; queues their items).
    pub objects: Vec<Vec<u64>>,
}

/// The compiled transition system: action = "process `i` performs its next
/// operation atomically".
pub struct ObjectSystem<'a, P: ObjectProtocol> {
    proto: &'a P,
    inputs: Vec<Vec<u64>>,
}

impl<'a, P: ObjectProtocol> ObjectSystem<'a, P> {
    /// System over all binary input vectors.
    pub fn all_binary(proto: &'a P) -> Self {
        let n = proto.n();
        let inputs = (0..(1u64 << n))
            .map(|mask| (0..n).map(|i| (mask >> i) & 1).collect())
            .collect();
        ObjectSystem { proto, inputs }
    }

    fn apply(objects: &mut [Vec<u64>], idx: usize, op: ObjOp) -> u64 {
        let obj = &mut objects[idx];
        match op {
            ObjOp::Read => obj[0],
            ObjOp::Write(v) => {
                obj[0] = v;
                0
            }
            ObjOp::TestAndSet => {
                let old = obj[0];
                obj[0] = 1;
                old
            }
            ObjOp::CompareAndSwap { expect, new } => {
                if obj[0] == expect {
                    obj[0] = new;
                    1
                } else {
                    0
                }
            }
            ObjOp::Enqueue(v) => {
                obj.push(v);
                0
            }
            ObjOp::Dequeue => {
                if obj.is_empty() {
                    EMPTY
                } else {
                    obj.remove(0)
                }
            }
        }
    }

    fn init_objects(proto: &P) -> Vec<Vec<u64>> {
        proto
            .objects()
            .into_iter()
            .map(|spec| match spec {
                ObjectSpec::Register { init } | ObjectSpec::CompareAndSwap { init } => vec![init],
                ObjectSpec::TestAndSet => vec![0],
                ObjectSpec::FifoQueue { init } => init,
            })
            .collect()
    }
}

impl<'a, P: ObjectProtocol> System for ObjectSystem<'a, P> {
    type State = ObjState<P::Local>;
    type Action = usize; // which process steps

    fn initial_states(&self) -> Vec<Self::State> {
        self.inputs
            .iter()
            .map(|input| ObjState {
                locals: (0..self.proto.n())
                    .map(|i| self.proto.init(i, input[i]))
                    .collect(),
                objects: Self::init_objects(self.proto),
            })
            .collect()
    }

    fn enabled(&self, state: &Self::State) -> Vec<usize> {
        (0..self.proto.n())
            .filter(|&i| self.proto.next_op(i, &state.locals[i]).is_some())
            .collect()
    }

    fn step(&self, state: &Self::State, action: &usize) -> Self::State {
        let i = *action;
        let (idx, op) = self
            .proto
            .next_op(i, &state.locals[i])
            .expect("enabled implies an op");
        let mut next = state.clone();
        let response = Self::apply(&mut next.objects, idx, op);
        next.locals[i] = self.proto.on_response(i, &state.locals[i], response);
        next
    }

    fn owner(&self, action: &usize) -> Option<ProcessId> {
        Some(ProcessId(*action))
    }

    fn num_processes(&self) -> Option<usize> {
        Some(self.proto.n())
    }
}

impl<'a, P: ObjectProtocol> DecisionSystem for ObjectSystem<'a, P> {
    fn decisions(&self, state: &Self::State) -> Vec<(ProcessId, u64)> {
        state
            .locals
            .iter()
            .enumerate()
            .filter_map(|(i, l)| self.proto.decision(l).map(|v| (ProcessId(i), v)))
            .collect()
    }
}

/// The hierarchy checker's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyVerdict {
    /// Agreement, validity and wait-freedom all verified exhaustively.
    Correct,
    /// Two processes decide differently in some reachable configuration.
    AgreementViolation,
    /// A decision value that is nobody's input is reachable.
    ValidityViolation,
    /// Some process, run solo from some reachable configuration, fails to
    /// decide within the step bound.
    NotWaitFree,
}

/// Exhaustively check a candidate protocol.
pub fn consensus_verdict<P: ObjectProtocol>(proto: &P, max_states: usize) -> HierarchyVerdict
where
    P::Local: Encode,
{
    let sys = ObjectSystem::all_binary(proto);
    let report = Search::new(&sys).max_states(max_states).valence();
    if !report.agreement_violations.is_empty() {
        return HierarchyVerdict::AgreementViolation;
    }
    // Validity: decided values must be inputs (binary world: decided ≤ 1 and
    // matches some process's input in that instance).
    for (k, input) in
        (0..(1u64 << proto.n())).map(|m| (m, (0..proto.n()).map(|i| (m >> i) & 1).collect::<Vec<u64>>()))
    {
        let _ = k;
        let single = ObjectSystem {
            proto,
            inputs: vec![input.clone()],
        };
        let r = Search::new(&single).max_states(max_states).valence();
        for init in single.initial_states() {
            if let Some(val) = r.valence.get(&init) {
                if val.0.iter().any(|v| !input.contains(v)) {
                    return HierarchyVerdict::ValidityViolation;
                }
            }
        }
    }
    // Wait-freedom: from every reachable configuration, every undecided
    // process with work left must decide within a bounded solo run.
    let states = Search::new(&sys).max_states(max_states).reachable_states();
    let solo_bound = 64;
    for s in states {
        for i in 0..proto.n() {
            if proto.decision(&s.locals[i]).is_some() {
                continue;
            }
            let mut cur = s.clone();
            let mut steps = 0;
            while proto.decision(&cur.locals[i]).is_none() {
                if proto.next_op(i, &cur.locals[i]).is_none() {
                    break; // halted without deciding: treat as decided-none
                }
                cur = sys.step(&cur, &i);
                steps += 1;
                if steps > solo_bound {
                    return HierarchyVerdict::NotWaitFree;
                }
            }
        }
    }
    HierarchyVerdict::Correct
}

// ---------------------------------------------------------------------
// Protocols
// ---------------------------------------------------------------------

/// Shared local shape for the simple protocols below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimpleLocal {
    /// About to write own input to own register.
    WriteOwn {
        /// The input value.
        input: u64,
    },
    /// About to access the decisive object.
    Contend {
        /// The input value.
        input: u64,
    },
    /// Lost the race; about to read register `idx`.
    ReadPeer {
        /// The input value.
        input: u64,
        /// Which peer register to read.
        idx: usize,
    },
    /// Decided.
    Done {
        /// The decided value.
        value: u64,
    },
}

impl<L: Encode> Encode for ObjState<L> {
    fn encode(&self, h: &mut FpHasher) {
        self.locals.encode(h);
        self.objects.encode(h);
    }
}

impossible_explore::impl_encode_enum!(SimpleLocal {
    0: WriteOwn { input },
    1: Contend { input },
    2: ReadPeer { input, idx },
    3: Done { value },
});

impossible_explore::impl_encode_enum!(CasLocal {
    0: Try { input },
    1: ReadBack,
    2: Done { value },
});

impossible_explore::impl_encode_enum!(Tas3Local {
    0: WriteOwn { input },
    1: Contend { input },
    2: ReadPeer { input, k, first },
    3: Done { value },
});

/// Test-and-set consensus for two processes: write input, TAS, winner takes
/// own value, loser reads the winner's register. Consensus number of TAS
/// is ≥ 2 — verified exhaustively.
#[derive(Debug, Clone, Default)]
pub struct TasConsensus2;

impl ObjectProtocol for TasConsensus2 {
    type Local = SimpleLocal;

    fn n(&self) -> usize {
        2
    }

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::TestAndSet,
            ObjectSpec::Register { init: EMPTY },
            ObjectSpec::Register { init: EMPTY },
        ]
    }

    fn init(&self, _i: usize, input: u64) -> SimpleLocal {
        SimpleLocal::WriteOwn { input }
    }

    fn next_op(&self, i: usize, local: &SimpleLocal) -> Option<(usize, ObjOp)> {
        match *local {
            SimpleLocal::WriteOwn { input } => Some((1 + i, ObjOp::Write(input))),
            SimpleLocal::Contend { .. } => Some((0, ObjOp::TestAndSet)),
            SimpleLocal::ReadPeer { idx, .. } => Some((idx, ObjOp::Read)),
            SimpleLocal::Done { .. } => None,
        }
    }

    fn on_response(&self, i: usize, local: &SimpleLocal, response: u64) -> SimpleLocal {
        match *local {
            SimpleLocal::WriteOwn { input } => SimpleLocal::Contend { input },
            SimpleLocal::Contend { input } => {
                if response == 0 {
                    SimpleLocal::Done { value: input } // won the TAS
                } else {
                    SimpleLocal::ReadPeer {
                        input,
                        idx: 1 + (1 - i),
                    }
                }
            }
            SimpleLocal::ReadPeer { .. } => SimpleLocal::Done { value: response },
            done => done,
        }
    }

    fn decision(&self, local: &SimpleLocal) -> Option<u64> {
        match local {
            SimpleLocal::Done { value } => Some(*value),
            _ => None,
        }
    }
}

/// Queue consensus for two processes: a FIFO queue pre-loaded with one
/// token; the dequeuer of the token wins. Consensus number of a queue ≥ 2.
#[derive(Debug, Clone, Default)]
pub struct QueueConsensus2;

const TOKEN: u64 = 7;

impl ObjectProtocol for QueueConsensus2 {
    type Local = SimpleLocal;

    fn n(&self) -> usize {
        2
    }

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::FifoQueue { init: vec![TOKEN] },
            ObjectSpec::Register { init: EMPTY },
            ObjectSpec::Register { init: EMPTY },
        ]
    }

    fn init(&self, _i: usize, input: u64) -> SimpleLocal {
        SimpleLocal::WriteOwn { input }
    }

    fn next_op(&self, i: usize, local: &SimpleLocal) -> Option<(usize, ObjOp)> {
        match *local {
            SimpleLocal::WriteOwn { input } => Some((1 + i, ObjOp::Write(input))),
            SimpleLocal::Contend { .. } => Some((0, ObjOp::Dequeue)),
            SimpleLocal::ReadPeer { idx, .. } => Some((idx, ObjOp::Read)),
            SimpleLocal::Done { .. } => None,
        }
    }

    fn on_response(&self, i: usize, local: &SimpleLocal, response: u64) -> SimpleLocal {
        match *local {
            SimpleLocal::WriteOwn { input } => SimpleLocal::Contend { input },
            SimpleLocal::Contend { input } => {
                if response == TOKEN {
                    SimpleLocal::Done { value: input }
                } else {
                    SimpleLocal::ReadPeer {
                        input,
                        idx: 1 + (1 - i),
                    }
                }
            }
            SimpleLocal::ReadPeer { .. } => SimpleLocal::Done { value: response },
            done => done,
        }
    }

    fn decision(&self, local: &SimpleLocal) -> Option<u64> {
        match local {
            SimpleLocal::Done { value } => Some(*value),
            _ => None,
        }
    }
}

/// Compare-and-swap consensus for `n` processes: CAS the input into a cell
/// initialized to a sentinel; everyone decides the cell's final content.
/// Consensus number ∞.
#[derive(Debug, Clone)]
pub struct CasConsensus {
    n: usize,
}

impl CasConsensus {
    /// CAS consensus for `n` processes.
    pub fn new(n: usize) -> Self {
        CasConsensus { n }
    }
}

/// Local state of [`CasConsensus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CasLocal {
    /// About to CAS.
    Try {
        /// Own input.
        input: u64,
    },
    /// CAS failed; read the cell.
    ReadBack,
    /// Decided.
    Done {
        /// The decided value.
        value: u64,
    },
}

const SENTINEL: u64 = 999;

impl ObjectProtocol for CasConsensus {
    type Local = CasLocal;

    fn n(&self) -> usize {
        self.n
    }

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![ObjectSpec::CompareAndSwap { init: SENTINEL }]
    }

    fn init(&self, _i: usize, input: u64) -> CasLocal {
        CasLocal::Try { input }
    }

    fn next_op(&self, _i: usize, local: &CasLocal) -> Option<(usize, ObjOp)> {
        match *local {
            CasLocal::Try { input } => Some((
                0,
                ObjOp::CompareAndSwap {
                    expect: SENTINEL,
                    new: input,
                },
            )),
            CasLocal::ReadBack => Some((0, ObjOp::Read)),
            CasLocal::Done { .. } => None,
        }
    }

    fn on_response(&self, _i: usize, local: &CasLocal, response: u64) -> CasLocal {
        match *local {
            CasLocal::Try { input } => {
                if response == 1 {
                    CasLocal::Done { value: input }
                } else {
                    CasLocal::ReadBack
                }
            }
            CasLocal::ReadBack => CasLocal::Done { value: response },
            done => done,
        }
    }

    fn decision(&self, local: &CasLocal) -> Option<u64> {
        match local {
            CasLocal::Done { value } => Some(*value),
            _ => None,
        }
    }
}

/// A register-only candidate: write own input, read the peer's register,
/// decide own if the peer is silent, else the minimum. Registers have
/// consensus number 1, so this must fail — the checker finds the
/// disagreement.
#[derive(Debug, Clone, Default)]
pub struct RegisterMin2;

impl ObjectProtocol for RegisterMin2 {
    type Local = SimpleLocal;

    fn n(&self) -> usize {
        2
    }

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::Register { init: EMPTY },
            ObjectSpec::Register { init: EMPTY },
        ]
    }

    fn init(&self, _i: usize, input: u64) -> SimpleLocal {
        SimpleLocal::WriteOwn { input }
    }

    fn next_op(&self, i: usize, local: &SimpleLocal) -> Option<(usize, ObjOp)> {
        match *local {
            SimpleLocal::WriteOwn { input } => Some((i, ObjOp::Write(input))),
            SimpleLocal::Contend { .. } => Some((1 - i, ObjOp::Read)),
            SimpleLocal::ReadPeer { .. } => unreachable!("unused state"),
            SimpleLocal::Done { .. } => None,
        }
    }

    fn on_response(&self, _i: usize, local: &SimpleLocal, response: u64) -> SimpleLocal {
        match *local {
            SimpleLocal::WriteOwn { input } => SimpleLocal::Contend { input },
            SimpleLocal::Contend { input } => SimpleLocal::Done {
                value: if response == EMPTY {
                    input
                } else {
                    input.min(response)
                },
            },
            done => done,
        }
    }

    fn decision(&self, local: &SimpleLocal) -> Option<u64> {
        match local {
            SimpleLocal::Done { value } => Some(*value),
            _ => None,
        }
    }
}

/// A register-only candidate that waits for the peer: safe but not
/// wait-free (the solo run spins forever).
#[derive(Debug, Clone, Default)]
pub struct RegisterWait2;

impl ObjectProtocol for RegisterWait2 {
    type Local = SimpleLocal;

    fn n(&self) -> usize {
        2
    }

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::Register { init: EMPTY },
            ObjectSpec::Register { init: EMPTY },
        ]
    }

    fn init(&self, _i: usize, input: u64) -> SimpleLocal {
        SimpleLocal::WriteOwn { input }
    }

    fn next_op(&self, i: usize, local: &SimpleLocal) -> Option<(usize, ObjOp)> {
        match *local {
            SimpleLocal::WriteOwn { input } => Some((i, ObjOp::Write(input))),
            SimpleLocal::Contend { .. } => Some((1 - i, ObjOp::Read)),
            SimpleLocal::ReadPeer { .. } => unreachable!("unused state"),
            SimpleLocal::Done { .. } => None,
        }
    }

    fn on_response(&self, _i: usize, local: &SimpleLocal, response: u64) -> SimpleLocal {
        match *local {
            SimpleLocal::WriteOwn { input } => SimpleLocal::Contend { input },
            SimpleLocal::Contend { input } => {
                if response == EMPTY {
                    // Spin until the peer shows up — the wait-freedom sin.
                    SimpleLocal::Contend { input }
                } else {
                    SimpleLocal::Done {
                        value: input.min(response),
                    }
                }
            }
            done => done,
        }
    }

    fn decision(&self, local: &SimpleLocal) -> Option<u64> {
        match local {
            SimpleLocal::Done { value } => Some(*value),
            _ => None,
        }
    }
}

/// A test-and-set candidate for **three** processes: the TAS winner decides
/// its input; losers read the peers' registers and guess. TAS has consensus
/// number exactly 2, so every guessing rule fails — the checker exhibits
/// the disagreement for this natural one.
#[derive(Debug, Clone, Default)]
pub struct TasConsensus3;

/// Local state of [`TasConsensus3`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tas3Local {
    /// Write own register.
    WriteOwn {
        /// Own input.
        input: u64,
    },
    /// Contend on the TAS.
    Contend {
        /// Own input.
        input: u64,
    },
    /// Lost; read peer `k` (0 or 1 among the two others).
    ReadPeer {
        /// Own input.
        input: u64,
        /// Which of the two peers.
        k: usize,
        /// First peer's observed value.
        first: u64,
    },
    /// Decided.
    Done {
        /// The decided value.
        value: u64,
    },
}

impl ObjectProtocol for TasConsensus3 {
    type Local = Tas3Local;

    fn n(&self) -> usize {
        3
    }

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::TestAndSet,
            ObjectSpec::Register { init: EMPTY },
            ObjectSpec::Register { init: EMPTY },
            ObjectSpec::Register { init: EMPTY },
        ]
    }

    fn init(&self, _i: usize, input: u64) -> Tas3Local {
        Tas3Local::WriteOwn { input }
    }

    fn next_op(&self, i: usize, local: &Tas3Local) -> Option<(usize, ObjOp)> {
        let peers = [(i + 1) % 3, (i + 2) % 3];
        match *local {
            Tas3Local::WriteOwn { input } => Some((1 + i, ObjOp::Write(input))),
            Tas3Local::Contend { .. } => Some((0, ObjOp::TestAndSet)),
            Tas3Local::ReadPeer { k, .. } => Some((1 + peers[k], ObjOp::Read)),
            Tas3Local::Done { .. } => None,
        }
    }

    fn on_response(&self, _i: usize, local: &Tas3Local, response: u64) -> Tas3Local {
        match *local {
            Tas3Local::WriteOwn { input } => Tas3Local::Contend { input },
            Tas3Local::Contend { input } => {
                if response == 0 {
                    Tas3Local::Done { value: input }
                } else {
                    Tas3Local::ReadPeer {
                        input,
                        k: 0,
                        first: EMPTY,
                    }
                }
            }
            Tas3Local::ReadPeer { input, k: 0, .. } => Tas3Local::ReadPeer {
                input,
                k: 1,
                first: response,
            },
            Tas3Local::ReadPeer { first, .. } => {
                // Guess: the lowest-indexed peer that has written. A loser
                // cannot tell *which* peer won the TAS — the fatal gap.
                let value = if first != EMPTY { first } else { response };
                Tas3Local::Done { value }
            }
            done => done,
        }
    }

    fn decision(&self, local: &Tas3Local) -> Option<u64> {
        match local {
            Tas3Local::Done { value } => Some(*value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tas_solves_two_process_consensus() {
        assert_eq!(
            consensus_verdict(&TasConsensus2, 500_000),
            HierarchyVerdict::Correct
        );
    }

    #[test]
    fn queue_solves_two_process_consensus() {
        assert_eq!(
            consensus_verdict(&QueueConsensus2, 500_000),
            HierarchyVerdict::Correct
        );
    }

    #[test]
    fn cas_solves_three_process_consensus() {
        assert_eq!(
            consensus_verdict(&CasConsensus::new(3), 500_000),
            HierarchyVerdict::Correct
        );
    }

    #[test]
    fn cas_solves_four_process_consensus() {
        assert_eq!(
            consensus_verdict(&CasConsensus::new(4), 2_000_000),
            HierarchyVerdict::Correct
        );
    }

    #[test]
    fn register_min_candidate_disagrees() {
        assert_eq!(
            consensus_verdict(&RegisterMin2, 500_000),
            HierarchyVerdict::AgreementViolation
        );
    }

    #[test]
    fn register_wait_candidate_is_not_wait_free() {
        assert_eq!(
            consensus_verdict(&RegisterWait2, 500_000),
            HierarchyVerdict::NotWaitFree
        );
    }

    #[test]
    fn tas_cannot_solve_three_process_consensus_naturally() {
        // The natural loser-guess rule disagrees somewhere: TAS tops out
        // at consensus number 2.
        assert_ne!(
            consensus_verdict(&TasConsensus3, 2_000_000),
            HierarchyVerdict::Correct
        );
    }

    #[test]
    fn bivalence_artifacts_appear_in_the_object_world_too() {
        // The Loui–Abu-Amara transfer: a bivalent initial configuration for
        // the TAS protocol (mixed inputs — the race decides).
        let sys = ObjectSystem::all_binary(&TasConsensus2);
        let report = impossible_core::valence::ValenceEngine::new(&sys)
            .max_states(500_000)
            .analyze();
        assert!(!report.bivalent_initials.is_empty());
        assert!(report.agreement_violations.is_empty());
    }
}

//! Register constructions, judged by the semantic checkers.
//!
//! The §2.3 programme builds strong registers from weak ones. Here:
//!
//! * [`simulate_safe_to_regular`] — binary safe → regular (the writer skips
//!   redundant writes, so an overlapping read's garbage is always a legal
//!   old-or-new value);
//! * [`simulate_regular_to_atomic_srsw`] — regular → atomic for a single
//!   reader via timestamps (no reader writes needed when there is only one
//!   reader: monotone local memory suffices);
//! * [`inversion_without_reader_writes`] — Lamport's theorem \[71\]: with
//!   **two** readers that never write, the per-reader-copy construction
//!   admits a *new/old inversion* across readers; the function constructs
//!   the schedule and the linearizability checker rejects the history —
//!   the executable content of "atomic registers cannot be implemented in
//!   terms of regular registers unless the readers write";
//! * [`simulate_mrsw_with_reader_writes`] — the fix: readers publish the
//!   freshest `(timestamp, value)` they have seen; every schedule
//!   linearizes.

use crate::spec::{check_linearizable, History, Op};
#[cfg(test)]
use crate::spec::check_regular;
use impossible_core::cert::{Certificate, Technique};
use impossible_det::DetRng;

/// Timestamped value stored in base registers.
type Stamped = (u64, u64); // (timestamp, value)

/// Simulate the binary safe→regular construction under a random schedule.
///
/// The writer performs `writes` alternating-bit writes, the reader `reads`
/// reads; micro-steps interleave randomly. Overlapping base reads return an
/// adversarial bit — but only when the stored bit is actually changing,
/// because the construction skips redundant writes. Returns the high-level
/// history (always regular; often not atomic).
pub fn simulate_safe_to_regular(writes: usize, reads: usize, seed: u64) -> History {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut history = History::new();
    let mut t = 0.0f64;
    let mut stored = 0u64; // the base register's settled value
    // Pending write window, if the writer is mid-write: (target, start).
    let mut writing: Option<(u64, f64)> = None;
    let mut writes_left = writes;
    let mut reads_left = reads;
    let mut current = 0u64; // writer's local copy (skip-redundant logic)

    while writes_left > 0 || reads_left > 0 {
        t += 1.0;
        let do_write = writes_left > 0 && (reads_left == 0 || rng.gen_bool(0.4));
        if do_write {
            match writing {
                None => {
                    let target = 1 - current;
                    // Skip-redundant: by construction target != stored.
                    writing = Some((target, t));
                }
                Some((target, start)) => {
                    stored = target;
                    current = target;
                    history.ops.push(Op::write(0, target, start, t));
                    writing = None;
                    writes_left -= 1;
                }
            }
        } else if reads_left > 0 {
            // A base-level read is instantaneous here; its high-level window
            // is [t, t+0.5].
            let value = match writing {
                // Overlap with a changing write: safe register may return
                // garbage — for a binary register, garbage ∈ {0, 1} which is
                // exactly {old, new}.
                Some(_) => rng.gen_range(0..2),
                None => stored,
            };
            history.ops.push(Op::read(1, value, t, t + 0.5));
            reads_left -= 1;
        }
    }
    // Close any dangling write.
    if let Some((target, start)) = writing {
        t += 1.0;
        history.ops.push(Op::write(0, target, start, t));
    }
    history
}

/// Simulate the timestamped regular→atomic SRSW construction: the writer
/// stores `(ts, v)` pairs in one regular register; the single reader
/// remembers the largest timestamp it has returned and never goes backward.
/// Every schedule linearizes.
pub fn simulate_regular_to_atomic_srsw(ops: usize, seed: u64) -> History {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut history = History::new();
    let mut t = 0.0f64;
    let mut settled: Stamped = (0, 0);
    let mut writing: Option<(Stamped, f64)> = None;
    let mut reader_best: Stamped = (0, 0);
    let mut ts = 0u64;

    for _ in 0..ops {
        t += 1.0;
        if rng.gen_bool(0.5) {
            // Writer micro-step.
            match writing {
                None => {
                    ts += 1;
                    writing = Some(((ts, rng.gen_range(0..100)), t));
                }
                Some((pair, start)) => {
                    settled = pair;
                    history.ops.push(Op::write(0, pair.1, start, t));
                    writing = None;
                }
            }
        } else {
            // Reader: base regular read returns settled or the in-flight
            // pair (adversary picks); pairs are read atomically.
            let observed = match writing {
                Some((pair, _)) if rng.gen_bool(0.5) => pair,
                _ => settled,
            };
            if observed.0 > reader_best.0 {
                reader_best = observed;
            }
            history.ops.push(Op::read(1, reader_best.1, t, t + 0.5));
        }
    }
    if let Some((pair, start)) = writing {
        t += 1.0;
        history.ops.push(Op::write(0, pair.1, start, t));
    }
    history
}

/// Lamport's theorem, executed: the natural multi-reader construction in
/// which readers never write (one atomic copy per reader, written in
/// sequence) admits a new/old inversion. Returns the refutation
/// certificate containing the non-linearizable history.
pub fn inversion_without_reader_writes() -> (History, Certificate) {
    // Writer writes value 1 into copy[0] then copy[1]; between the two,
    // reader 0 reads its (fresh) copy and completes, then reader 1 reads
    // its (stale) copy and completes.
    let history = History::new()
        .with(Op::write(0, 1, 0.0, 10.0)) // high-level write in progress
        .with(Op::read(1, 1, 1.0, 2.0)) // reader 0: new value
        .with(Op::read(2, 0, 3.0, 4.0)); // reader 1: old value — inversion
    assert!(check_linearizable(&history).is_none());
    let cert = Certificate::new(
        Technique::Chain,
        "multi-reader atomic register from per-reader copies without reader writes",
        format!(
            "schedule: writer updates copy0, reader0 returns new (1), reader1 then \
             returns old (0), writer finishes copy1 — history {history:?} has no \
             linearization (new/old inversion); readers must write to warn each other"
        ),
    );
    (history, cert)
}

/// Simulate the corrected multi-reader construction: readers publish the
/// freshest `(ts, v)` they have seen in their own announce register and
/// always consult each other's announcements. Every schedule linearizes.
pub fn simulate_mrsw_with_reader_writes(
    readers: usize,
    ops: usize,
    seed: u64,
) -> History {
    assert!(readers >= 1);
    let mut rng = DetRng::seed_from_u64(seed);
    let mut history = History::new();
    let mut t = 0.0f64;
    let mut ts = 0u64;
    // Base registers are atomic (built by the SRSW construction): writer's
    // register plus one announce register per reader.
    let mut wreg: Stamped = (0, 0);
    let mut announce: Vec<Stamped> = vec![(0, 0); readers];
    // In-flight reader operations: (reader, phase, best, start).
    // phase 0..=readers: 0 = read wreg, 1..readers = read announce[phase-1],
    // readers = write own announce & respond.
    let mut in_flight: Vec<Option<(usize, Stamped, f64)>> = vec![None; readers];
    // In-flight write: (pair, phase?) — writer has a single micro-step.
    let mut pending_write: Option<(Stamped, f64)> = None;

    for _ in 0..ops {
        t += 1.0;
        let who = rng.gen_range(0..readers + 1);
        if who == readers {
            // Writer.
            match pending_write {
                None => {
                    ts += 1;
                    pending_write = Some(((ts, rng.gen_range(0..100)), t));
                }
                Some((pair, start)) => {
                    wreg = pair;
                    history.ops.push(Op::write(readers, pair.1, start, t));
                    pending_write = None;
                }
            }
        } else {
            let r = who;
            match in_flight[r].take() {
                None => {
                    // Begin: read the writer's register.
                    in_flight[r] = Some((0, wreg, t));
                }
                Some((phase, mut best, start)) => {
                    if phase < readers - 1 + 1 && phase < readers {
                        // Read announce[phase] (skipping is fine for r == phase;
                        // reading own announce is harmless).
                        let seen = announce[phase];
                        if seen.0 > best.0 {
                            best = seen;
                        }
                        if phase + 1 < readers {
                            in_flight[r] = Some((phase + 1, best, start));
                        } else {
                            // Final micro-step: publish and respond.
                            announce[r] = best;
                            history.ops.push(Op::read(r, best.1, start, t + 0.5));
                        }
                    }
                }
            }
        }
    }
    // Abandon unfinished operations (incomplete ops are dropped from the
    // history; completeness is the checker's precondition).
    if let Some((pair, start)) = pending_write {
        t += 1.0;
        history.ops.push(Op::write(readers, pair.1, start, t));
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_to_regular_is_always_regular() {
        for seed in 0..30 {
            let h = simulate_safe_to_regular(6, 8, seed);
            assert!(check_regular(&h).is_ok(), "seed {seed}: {h:?}");
        }
    }

    #[test]
    fn safe_to_regular_is_not_atomic_somewhere() {
        // Some schedule must produce a new/old inversion.
        let broken = (0..300).any(|seed| {
            let h = simulate_safe_to_regular(6, 8, seed);
            check_linearizable(&h).is_none()
        });
        assert!(broken, "regular ≠ atomic: an inversion schedule must exist");
    }

    #[test]
    fn timestamped_srsw_is_always_atomic() {
        for seed in 0..50 {
            let h = simulate_regular_to_atomic_srsw(24, seed);
            assert!(
                check_linearizable(&h).is_some(),
                "seed {seed}: {h:?}"
            );
        }
    }

    #[test]
    fn lamport_inversion_certificate() {
        let (history, cert) = inversion_without_reader_writes();
        assert!(check_linearizable(&history).is_none());
        assert!(cert.to_string().contains("readers must write"));
    }

    #[test]
    fn reader_writing_construction_is_always_atomic() {
        for seed in 0..40 {
            let h = simulate_mrsw_with_reader_writes(2, 40, seed);
            assert!(
                check_linearizable(&h).is_some(),
                "seed {seed}: {h:?}"
            );
        }
    }

    #[test]
    fn reader_writing_construction_three_readers() {
        for seed in 0..15 {
            let h = simulate_mrsw_with_reader_writes(3, 30, seed);
            assert!(check_linearizable(&h).is_some(), "seed {seed}");
        }
    }
}

//! Structured trace events with deterministic single-line JSONL encoding.
//!
//! An [`Event`] is one observation of a run: a logical sequence number
//! (stamped by the tracer — **never** a wall-clock time; the workspace's
//! `det-time` lint holds in this crate with no waivers), the engine scope
//! that emitted it, an event kind, and an ordered list of named fields.
//! Field order is part of the event's identity: equal events encode to
//! equal bytes, which is what lets [`crate::trace_diff`] and the
//! trace-determinism tests compare runs byte-for-byte.
//!
//! The encoding follows the `SearchStats::to_json` style already pinned
//! elsewhere in the workspace: fixed key order (`seq`, `scope`, `kind`,
//! then the fields in emission order), no whitespace, integers undecorated,
//! strings minimally escaped. [`Event::parse_jsonl`] reads exactly that
//! canonical form back (it is a decoder for this encoder, not a general
//! JSON parser), so dumped traces round-trip through files for offline
//! diffing.

/// A field value. Everything a trace records is one of these four shapes;
/// keeping the set closed is what keeps the encoding deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned counter / identifier.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Flag.
    Bool(bool),
    /// Short label (cause names, rendered vectors, …).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn encode_into(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
        }
    }
}

/// One trace event. See the module docs for the encoding contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical position in the run: 0, 1, 2, … as stamped by the tracer.
    pub seq: u64,
    /// The engine that emitted it (`"search"`, `"valence"`, `"benor"`, …).
    pub scope: String,
    /// What happened (`"level.enter"`, `"truncate"`, `"round"`, …).
    /// Span conventions (`*.enter` / `*.exit` pairs) live in `docs/OBS.md`.
    pub kind: String,
    /// Named payload, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Deterministic single-line JSON (no trailing newline): fixed key
    /// order, no whitespace variation. Equal events encode to equal bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"scope\":\"");
        escape_into(&self.scope, &mut out);
        out.push_str("\",\"kind\":\"");
        escape_into(&self.kind, &mut out);
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            escape_into(k, &mut out);
            out.push_str("\":");
            v.encode_into(&mut out);
        }
        out.push('}');
        out
    }

    /// Parse one canonical JSONL line produced by [`Event::to_jsonl`].
    ///
    /// Returns `None` on anything that encoder cannot have written. This is
    /// deliberately *not* a general JSON parser (no nesting, no floats, no
    /// reordered keys) — traces are our own artifact, and rejecting
    /// free-form input keeps the decoder small and the round-trip exact.
    pub fn parse_jsonl(line: &str) -> Option<Event> {
        let mut p = Parser { b: line.trim().as_bytes(), i: 0 };
        p.expect(b'{')?;
        let seq = match (p.key()?.as_str(), p.value()?) {
            ("seq", Value::U64(v)) => v,
            _ => return None,
        };
        p.expect(b',')?;
        let scope = match (p.key()?.as_str(), p.value()?) {
            ("scope", Value::Str(s)) => s,
            _ => return None,
        };
        p.expect(b',')?;
        let kind = match (p.key()?.as_str(), p.value()?) {
            ("kind", Value::Str(s)) => s,
            _ => return None,
        };
        let mut fields = Vec::new();
        while p.peek() == Some(b',') {
            p.expect(b',')?;
            let k = p.key()?;
            let v = p.value()?;
            fields.push((k, v));
        }
        p.expect(b'}')?;
        if p.i != p.b.len() {
            return None;
        }
        Some(Event { seq, scope, kind, fields })
    }

    /// Render for humans: `seq scope kind {k: v, …}` — what the diff
    /// reporter and the trace CLI print.
    pub fn render(&self) -> String {
        let mut out = format!("#{} {} {}", self.seq, self.scope, self.kind);
        if !self.fields.is_empty() {
            out.push_str(" {");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(k);
                out.push_str(": ");
                match v {
                    Value::U64(x) => out.push_str(&x.to_string()),
                    Value::I64(x) => out.push_str(&x.to_string()),
                    Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
                    Value::Str(s) => out.push_str(s),
                }
            }
            out.push('}');
        }
        out
    }
}

/// JSON string escaping: the canonical subset the encoder emits.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Tiny cursor over the canonical encoding.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Option<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    /// `"key":` — returns the key.
    fn key(&mut self) -> Option<String> {
        let k = self.string()?;
        self.expect(b':')?;
        Some(k)
    }

    /// A quoted string with the canonical escapes undone.
    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            if self.i + 4 >= self.b.len() {
                                return None;
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5]).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 continuation bytes pass through.
                    let start = self.i;
                    while self
                        .b
                        .get(self.i)
                        .is_some_and(|&c| c != b'"' && c != b'\\')
                    {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).ok()?);
                }
            }
        }
    }

    /// A canonical value: integer, boolean, or string.
    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'"' => Some(Value::Str(self.string()?)),
            b't' => {
                self.literal(b"true")?;
                Some(Value::Bool(true))
            }
            b'f' => {
                self.literal(b"false")?;
                Some(Value::Bool(false))
            }
            b'-' => {
                self.i += 1;
                let n = self.digits()?;
                Some(Value::I64(-(n as i64)))
            }
            b'0'..=b'9' => Some(Value::U64(self.digits()?)),
            _ => None,
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Option<()> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn digits(&mut self) -> Option<u64> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            seq: 42,
            scope: "search".into(),
            kind: "level.exit".into(),
            fields: vec![
                ("level".into(), Value::U64(7)),
                ("delta".into(), Value::I64(-3)),
                ("truncated".into(), Value::Bool(false)),
                ("cause".into(), Value::Str("none".into())),
            ],
        }
    }

    #[test]
    fn encoding_is_canonical() {
        assert_eq!(
            sample().to_jsonl(),
            "{\"seq\":42,\"scope\":\"search\",\"kind\":\"level.exit\",\
             \"level\":7,\"delta\":-3,\"truncated\":false,\"cause\":\"none\"}"
        );
    }

    #[test]
    fn round_trips_through_jsonl() {
        let e = sample();
        assert_eq!(Event::parse_jsonl(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn round_trips_escapes() {
        let e = Event {
            seq: 0,
            scope: "x".into(),
            kind: "k".into(),
            fields: vec![("s".into(), Value::Str("a\"b\\c\nd\te\u{1}".into()))],
        };
        assert_eq!(Event::parse_jsonl(&e.to_jsonl()), Some(e));
    }

    #[test]
    fn rejects_non_canonical_input() {
        assert_eq!(Event::parse_jsonl(""), None);
        assert_eq!(Event::parse_jsonl("{}"), None);
        // Reordered keys are not the canonical encoding.
        assert_eq!(
            Event::parse_jsonl("{\"scope\":\"s\",\"seq\":1,\"kind\":\"k\"}"),
            None
        );
        // Trailing garbage.
        assert_eq!(
            Event::parse_jsonl("{\"seq\":1,\"scope\":\"s\",\"kind\":\"k\"}x"),
            None
        );
    }

    #[test]
    fn render_is_compact_and_readable() {
        assert_eq!(
            sample().render(),
            "#42 search level.exit {level: 7, delta: -3, truncated: false, cause: none}"
        );
    }
}

//! Trace sinks: the [`Tracer`] trait, the zero-cost [`NoopTracer`], and the
//! bounded [`RingTracer`].
//!
//! Engines thread a `&mut dyn Tracer` through their hot loops and gate
//! every emission on [`Tracer::active`]:
//!
//! ```
//! use impossible_obs::{Tracer, Value};
//!
//! fn expand(tracer: &mut dyn Tracer, level: usize, frontier: usize) {
//!     if tracer.active() {
//!         tracer.record(
//!             "search",
//!             "level.enter",
//!             vec![("level", Value::from(level)), ("frontier", Value::from(frontier))],
//!         );
//!     }
//! }
//!
//! expand(&mut impossible_obs::NoopTracer, 0, 1); // free: the gate is false
//! ```
//!
//! With [`NoopTracer`] the gate is a constant `false`, so the field vector
//! is never built — the untraced path costs one predictable branch, which
//! is what keeps the instrumented engines inside the committed
//! `BENCH_5.json` noise band.
//!
//! The sequence stamp is **logical**: each sink numbers the events it
//! accepts 0, 1, 2, …. No wall clock is read anywhere in this crate (the
//! `det-time` lint verifies that claim on every verify run).

use crate::event::{Event, Value};
use std::collections::VecDeque;

/// A sink for trace events.
///
/// Implementations stamp [`Event::seq`] themselves from a private logical
/// counter, so an event's position in a trace is a property of the run, not
/// of any clock.
pub trait Tracer {
    /// Is anyone listening? Hot paths check this before building fields.
    fn active(&self) -> bool;

    /// Record one event. Implementations that are not [`active`](Tracer::active)
    /// may drop it without cost.
    fn record(&mut self, scope: &'static str, kind: &'static str, fields: Vec<(&'static str, Value)>);
}

/// The default sink: discards everything, reports inactive.
///
/// Every untraced engine entry point (`Search::explore`,
/// `ValenceEngine::analyze`, …) delegates to its traced twin with a
/// `NoopTracer`, so the zero-cost claim is structural: the only overhead on
/// the untraced path is the inlined `active()` check.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline(always)]
    fn active(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _: &'static str, _: &'static str, _: Vec<(&'static str, Value)>) {}
}

/// A bounded in-memory sink: keeps the **last** `capacity` events.
///
/// Long runs cannot exhaust memory; the trace keeps its most recent window
/// (usually the interesting part — where the runs diverged or truncated)
/// and counts what it had to evict in [`RingTracer::dropped`]. Sequence
/// numbers keep counting across evictions, so positions in a truncated
/// trace are still absolute run positions.
#[derive(Debug, Clone)]
pub struct RingTracer {
    buf: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl RingTracer {
    /// A sink keeping the last `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingTracer {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Events currently held, oldest first, as a contiguous slice.
    pub fn events(&mut self) -> &[Event] {
        self.buf.make_contiguous();
        self.buf.as_slices().0
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to respect the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The held events as deterministic JSONL, one line per event, each
    /// newline-terminated. Equal runs produce equal bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Consume the sink, yielding the held events oldest first.
    pub fn into_events(self) -> Vec<Event> {
        self.buf.into_iter().collect()
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn active(&self) -> bool {
        true
    }

    fn record(&mut self, scope: &'static str, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            seq: self.next_seq,
            scope: scope.to_string(),
            kind: kind.to_string(),
            fields: fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self.next_seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: &mut RingTracer, kind: &'static str) {
        t.record("test", kind, vec![("x", Value::U64(1))]);
    }

    #[test]
    fn noop_is_inactive_and_silent() {
        let mut t = NoopTracer;
        assert!(!t.active());
        t.record("test", "k", vec![]);
    }

    #[test]
    fn ring_keeps_the_last_capacity_events() {
        let mut t = RingTracer::new(3);
        for kind in ["a", "b", "c", "d", "e"] {
            ev(&mut t, kind);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 5);
        let kinds: Vec<&str> = t.events().iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["c", "d", "e"]);
        // Sequence numbers are absolute run positions, not buffer slots.
        assert_eq!(t.events()[0].seq, 2);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut t = RingTracer::new(0);
        ev(&mut t, "a");
        ev(&mut t, "b");
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].kind, "b");
    }

    #[test]
    fn jsonl_lines_round_trip() {
        let mut t = RingTracer::new(8);
        ev(&mut t, "a");
        ev(&mut t, "b");
        let jsonl = t.to_jsonl();
        let parsed: Vec<Event> = jsonl
            .lines()
            .map(|l| Event::parse_jsonl(l).expect("canonical line"))
            .collect();
        assert_eq!(parsed, t.into_events());
    }
}

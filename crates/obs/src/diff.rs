//! Trace diffing: localize the first divergence between two runs.
//!
//! The determinism pins elsewhere in the workspace say *whether* two runs
//! match. This module says *where* they stopped matching: [`trace_diff`]
//! scans two event sequences in lockstep and reports the first index at
//! which they disagree — "diverged at event 23: left `level.exit
//! {level: 7, states: 812}`, right `level.exit {level: 7, states: 815}`" —
//! which is the difference between knowing a determinism contract broke and
//! knowing which level of which engine broke it.
//!
//! Comparison is structural equality of [`Event`] (seq, scope, kind, and
//! every field in order), which by the canonical-encoding contract is the
//! same thing as byte equality of the JSONL lines.

use crate::event::Event;

/// The verdict of [`trace_diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDiff {
    /// Same length, every event equal.
    Identical {
        /// How many events were compared.
        events: usize,
    },
    /// The traces disagree, first at `index`.
    Diverged {
        /// 0-based index of the first disagreement.
        index: usize,
        /// The left trace's event there (`None`: left ended early).
        left: Option<Event>,
        /// The right trace's event there (`None`: right ended early).
        right: Option<Event>,
    },
}

impl TraceDiff {
    /// Did the traces match exactly?
    pub fn identical(&self) -> bool {
        matches!(self, TraceDiff::Identical { .. })
    }

    /// Human-readable verdict, one block of lines.
    pub fn render(&self) -> String {
        match self {
            TraceDiff::Identical { events } => {
                format!("traces identical ({events} events)")
            }
            TraceDiff::Diverged { index, left, right } => {
                let side = |e: &Option<Event>| match e {
                    Some(e) => e.render(),
                    None => "<trace ended>".to_string(),
                };
                format!(
                    "traces diverge at event {index}\n  left:  {}\n  right: {}",
                    side(left),
                    side(right)
                )
            }
        }
    }
}

/// Compare two traces event-by-event; report the first divergence.
///
/// A shorter trace that is a prefix of the longer one diverges at its end
/// (`left` or `right` is `None` there): trace length is part of the
/// determinism contract.
pub fn trace_diff(a: &[Event], b: &[Event]) -> TraceDiff {
    let n = a.len().max(b.len());
    for i in 0..n {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if x == y => continue,
            (l, r) => {
                return TraceDiff::Diverged {
                    index: i,
                    left: l.cloned(),
                    right: r.cloned(),
                }
            }
        }
    }
    TraceDiff::Identical { events: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn ev(seq: u64, kind: &str, x: u64) -> Event {
        Event {
            seq,
            scope: "t".into(),
            kind: kind.into(),
            fields: vec![("x".into(), Value::U64(x))],
        }
    }

    #[test]
    fn identical_traces() {
        let a = vec![ev(0, "s", 1), ev(1, "e", 2)];
        let d = trace_diff(&a, &a.clone());
        assert!(d.identical());
        assert_eq!(d.render(), "traces identical (2 events)");
    }

    #[test]
    fn divergence_is_localized_to_the_first_differing_event() {
        let a = vec![ev(0, "s", 1), ev(1, "m", 2), ev(2, "e", 3)];
        let b = vec![ev(0, "s", 1), ev(1, "m", 9), ev(2, "e", 3)];
        match trace_diff(&a, &b) {
            TraceDiff::Diverged { index, left, right } => {
                assert_eq!(index, 1);
                assert_eq!(left.unwrap().fields[0].1, Value::U64(2));
                assert_eq!(right.unwrap().fields[0].1, Value::U64(9));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn prefix_traces_diverge_at_the_shorter_end() {
        let a = vec![ev(0, "s", 1)];
        let b = vec![ev(0, "s", 1), ev(1, "e", 2)];
        match trace_diff(&a, &b) {
            TraceDiff::Diverged { index, left, right } => {
                assert_eq!(index, 1);
                assert!(left.is_none());
                assert_eq!(right.unwrap().kind, "e");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        assert!(trace_diff(&a, &a.clone()).identical());
    }

    #[test]
    fn render_mentions_both_sides() {
        let a = vec![ev(0, "s", 1)];
        let b: Vec<Event> = Vec::new();
        let text = trace_diff(&a, &b).render();
        assert!(text.contains("diverge at event 0"));
        assert!(text.contains("<trace ended>"));
    }
}

//! # impossible-obs
//!
//! Deterministic execution tracing for every engine in the workspace.
//!
//! The paper's proof techniques all operate on *executions*: a bivalence
//! argument walks a chain of configurations, a scenario gluing compares two
//! runs step by step, a stretched diagram is an execution with its timing
//! re-drawn. Yet until this crate the engines only returned end-of-run
//! reports — when two runs disagreed (or a determinism pin broke) the
//! evidence was "bytes differ" and nothing else. `impossible-obs` makes the
//! run itself observable without giving up the determinism discipline the
//! repo is built on:
//!
//! * [`event`] — structured [`Event`] records stamped by a **logical**
//!   event counter (never a wall clock: the crate passes the `det-time`
//!   lint with no waivers), encoded as deterministic single-line JSONL;
//! * [`tracer`] — the [`Tracer`] sink trait, the zero-cost [`NoopTracer`]
//!   default every untraced entry point uses, and the bounded
//!   [`RingTracer`] that keeps the last *N* events of a run;
//! * [`diff`] — [`trace_diff`], which turns "two traces differ" into
//!   "first divergence at event *N*: left `level.exit {level: 7, …}`,
//!   right `truncate {cause: states}`".
//!
//! ## The determinism contract
//!
//! A trace is evidence only if re-running the same seed reproduces the same
//! bytes. Every instrumented engine therefore emits events **only from its
//! sequential control path** — in the parallel search engine that is the
//! ordered partition merge, never the worker closures — so a trace is a
//! pure function of `(system, bounds, seed, canon, partitions)` and the
//! worker count never changes a byte
//! (`crates/explore/tests/trace_determinism.rs` pins 1/2/8 workers
//! byte-identical). Events carry no wall-clock field at all; ordering is
//! the logical `seq` stamp.
//!
//! ```
//! use impossible_obs::{trace_diff, RingTracer, TraceDiff, Tracer, Value};
//!
//! let mut a = RingTracer::new(16);
//! let mut b = RingTracer::new(16);
//! for t in [&mut a, &mut b] {
//!     t.record("demo", "start", vec![("seed", Value::U64(7))]);
//! }
//! a.record("demo", "level.exit", vec![("states", Value::U64(9))]);
//! b.record("demo", "level.exit", vec![("states", Value::U64(12))]);
//!
//! match trace_diff(a.events(), b.events()) {
//!     TraceDiff::Diverged { index, .. } => assert_eq!(index, 1),
//!     TraceDiff::Identical { .. } => unreachable!("runs diverge at event 1"),
//! }
//! ```
//!
//! See `docs/OBS.md` for the event model, the span/counter conventions the
//! engines follow, and the trace-diff workflow.

pub mod diff;
pub mod event;
pub mod tracer;

/// Emit one trace event through a `&mut dyn Tracer`, building the field
/// vector **only if the tracer is active** — the hot-loop emission form:
///
/// ```
/// use impossible_obs::{trace_event, RingTracer, NoopTracer};
///
/// fn level(tracer: &mut dyn impossible_obs::Tracer, depth: usize) {
///     trace_event!(tracer, "search", "level.enter", "level": depth, "frontier": 1usize);
/// }
///
/// level(&mut NoopTracer, 3); // inactive gate: no allocation, no event
/// let mut ring = RingTracer::new(8);
/// level(&mut ring, 3);
/// assert_eq!(ring.events()[0].kind, "level.enter");
/// ```
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $scope:literal, $kind:literal $(, $key:literal : $val:expr)* $(,)?) => {
        if $crate::Tracer::active(&*$tracer) {
            $crate::Tracer::record(
                $tracer,
                $scope,
                $kind,
                vec![$(($key, $crate::Value::from($val))),*],
            );
        }
    };
}

pub use diff::{trace_diff, TraceDiff};
pub use event::{Event, Value};
pub use tracer::{NoopTracer, RingTracer, Tracer};

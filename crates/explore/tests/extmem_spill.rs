//! The external-memory determinism contract: a spilled run produces
//! byte-identical reports to the resident engine — same states, same
//! transitions, same dedup counts, same truncation, same witness — for any
//! seed, worker count, and spill threshold. Only `stats.peak_bytes` may
//! (and should) differ, downward.
//!
//! `DET_SEED` replays the property cases.

use impossible_det::{det_assert, det_assert_eq, det_prop};
use impossible_explore::page::{
    decode_key_page, decode_run_page, encode_key_page, encode_run_page, run_page_keys,
};
use impossible_explore::{Grid, Search, SearchReport, SpillPolicy, Truncation};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// Strip the legitimately-differing stats (worker count and the steal
/// counters are recorded by design and vary with the pool size,
/// `peak_bytes` is the whole point of spilling) before byte comparison.
fn masked(r: &SearchReport<Vec<u8>, usize>) -> String {
    let mut stats = r.stats;
    stats.workers = 0;
    stats.steals = 0;
    stats.stolen_shards = 0;
    stats.peak_bytes = 0;
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.num_states, r.num_transitions, r.terminal_states, r.truncated_by, r.witness, stats
    )
}

#[test]
fn spilled_exploration_matches_resident_bytes() {
    let sys = Grid { n: 4, max: 3 }; // 256 states, several levels
    let resident = Search::new(&sys).explore();
    for (i, (ram_keys, front)) in [(0usize, false), (0, true), (40, false), (40, true)]
        .iter()
        .enumerate()
    {
        let dir = tmp(&format!("spill-match-{i}"));
        let policy = SpillPolicy::new(&dir)
            .ram_keys(*ram_keys)
            .spill_frontier(*front);
        let spilled = Search::new(&sys).explore_extmem(&policy);
        assert!(
            spilled.stats.peak_bytes <= resident.stats.peak_bytes,
            "spilling must not raise peak bytes (ram_keys={ram_keys} front={front})"
        );
        assert_eq!(
            masked(&spilled),
            masked(&resident),
            "ram_keys={ram_keys} front={front}"
        );
    }
}

#[test]
fn spilled_reports_are_worker_count_invariant() {
    // The headline contract from docs/EXTMEM.md, pinned at the canonical
    // 1/2/8 worker counts (matching tests/determinism.rs for the resident
    // engine): spill run files are ordered-concatenated per shard, so the
    // bytes cannot depend on who wrote them.
    let sys = Grid { n: 4, max: 3 };
    let render = |workers: usize| {
        let dir = tmp(&format!("spill-workers-{workers}"));
        let policy = SpillPolicy::new(&dir).ram_keys(50).spill_frontier(true);
        let r = Search::new(&sys).workers(workers).explore_extmem(&policy);
        masked(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
    // And all of them equal the resident engine's bytes.
    assert_eq!(one, masked(&Search::new(&sys).explore()));
}

#[test]
fn spilled_witness_replays_through_run_files() {
    let sys = Grid { n: 3, max: 4 };
    let target = |s: &Vec<u8>| s.iter().all(|&c| c == 4);
    let resident = Search::new(&sys).search(target);
    let policy = SpillPolicy::new(tmp("spill-witness"))
        .ram_keys(0)
        .spill_frontier(true);
    let spilled = Search::new(&sys).search_extmem(target, &policy);
    // ram_keys(0) flushes every level, so the witness's parent chain
    // crosses several run files; the replay must walk them from disk and
    // land on the identical shortest execution.
    assert!(spilled.witness.is_some());
    assert_eq!(masked(&spilled), masked(&resident));
}

#[test]
fn cap_truncation_is_exact_under_spill() {
    // The cap binds mid-level: the j-major replay path must produce the
    // resident engine's exact truncation, state count, and fallback count.
    let sys = Grid { n: 4, max: 3 };
    let cap = 97;
    let resident = Search::new(&sys).max_states(cap).explore();
    assert_eq!(resident.truncated_by, Some(Truncation::States));
    assert!(resident.stats.cap_fallbacks > 0);
    let policy = SpillPolicy::new(tmp("spill-cap")).ram_keys(0);
    let spilled = Search::new(&sys).max_states(cap).explore_extmem(&policy);
    assert_eq!(spilled.num_states, cap);
    assert_eq!(masked(&spilled), masked(&resident));
}

#[test]
fn depth_truncation_is_exact_under_spill() {
    let sys = Grid { n: 4, max: 3 };
    let resident = Search::new(&sys).max_depth(3).explore();
    assert_eq!(resident.truncated_by, Some(Truncation::Depth));
    let policy = SpillPolicy::new(tmp("spill-depth"))
        .ram_keys(0)
        .spill_frontier(true);
    let spilled = Search::new(&sys).max_depth(3).explore_extmem(&policy);
    assert_eq!(masked(&spilled), masked(&resident));
}

#[test]
fn spilled_runs_record_the_same_steal_counters_as_resident() {
    // The extmem engine drives the identical two-pass pool schedule per
    // level (expansion, then shard classify/merge), so its steal counters
    // must equal the resident engine's at the same worker count — and
    // stay zero at w=1 where the claim protocol is bypassed.
    let sys = Grid { n: 4, max: 3 };
    let resident = Search::new(&sys).workers(2).explore();
    let policy = SpillPolicy::new(tmp("spill-steals"))
        .ram_keys(0)
        .spill_frontier(true);
    let spilled = Search::new(&sys).workers(2).explore_extmem(&policy);
    assert!(spilled.stats.steals > 0, "w=2 spill ran the claim protocol");
    assert_eq!(spilled.stats.steals, resident.stats.steals);
    assert_eq!(spilled.stats.stolen_shards, resident.stats.stolen_shards);

    let w1 = Search::new(&sys)
        .workers(1)
        .explore_extmem(&SpillPolicy::new(tmp("spill-steals-w1")).ram_keys(0));
    assert_eq!(w1.stats.steals, 0);
    assert_eq!(w1.stats.stolen_shards, 0);
}

#[test]
fn run_files_are_deterministically_named_and_disjoint() {
    let sys = Grid { n: 3, max: 3 };
    let dir = tmp("spill-names");
    let policy = SpillPolicy::new(&dir).ram_keys(0);
    let report = Search::new(&sys).explore_extmem(&policy);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("shard"))
        .collect();
    names.sort();
    assert!(!names.is_empty());
    for n in &names {
        assert_eq!(n.len(), "shardXXX.runXXX".len(), "bad run name {n}");
    }
    // Every visited key is on disk exactly once: with ram_keys(0) the last
    // level flushed everything, so decoding all runs recovers exactly
    // `num_states` distinct keys.
    let mut total = 0usize;
    let mut all_keys: Vec<u64> = Vec::new();
    for n in &names {
        let buf = std::fs::read(dir.join(n)).unwrap();
        let keys = run_page_keys(&buf).unwrap();
        total += keys.len();
        all_keys.extend(keys);
    }
    all_keys.sort_unstable();
    all_keys.dedup();
    assert_eq!(all_keys.len(), total, "runs are key-disjoint");
    assert_eq!(total, report.num_states);
}

#[test]
fn page_codec_decode_then_encode_is_identity() {
    // The round trip the other way: any bytes the encoder produced decode
    // back to a value that re-encodes to the *same* bytes — there is exactly
    // one encoding per page, so run files can be compared byte-wise.
    let keys: Vec<u64> = (0..500u64).map(|i| 1 + i * i * 37).collect();
    let page = encode_key_page(&keys);
    let decoded = decode_key_page(&page).unwrap();
    assert_eq!(encode_key_page(&decoded), page);

    let entries: Vec<(u64, u32)> = keys.iter().map(|&k| (k, (k % 1000) as u32)).collect();
    let run = encode_run_page(&entries);
    let decoded = decode_run_page::<u32>(&run).unwrap();
    assert_eq!(encode_run_page(&decoded), run);
}

det_prop! {
    fn spill_sweep_any_seed_any_workers_any_threshold(cases = 10, seed in 0u64..1_000_000, w in 1usize..9, ram_keys in 0usize..300, case in 0usize..1_000_000) {
        // The full determinism sweep: seed × worker count × spill
        // threshold. The spilled run must reproduce the resident run's
        // bytes exactly, witness hunt included.
        let sys = Grid { n: 4, max: 3 };
        let resident_full = Search::new(&sys).seed(seed).explore();
        let resident_hunt = Search::new(&sys)
            .seed(seed)
            .search(|s| s.iter().all(|&c| c == 3));
        let dir = tmp(&format!("spill-sweep-{case}"));
        let spill_full = Search::new(&sys)
            .seed(seed)
            .workers(w)
            .explore_extmem(&SpillPolicy::new(dir.join("full")).ram_keys(ram_keys).spill_frontier(ram_keys % 2 == 0));
        let spill_hunt = Search::new(&sys)
            .seed(seed)
            .workers(w)
            .search_extmem(
                |s| s.iter().all(|&c| c == 3),
                &SpillPolicy::new(dir.join("hunt")).ram_keys(ram_keys).spill_frontier(ram_keys % 2 == 1),
            );
        det_assert_eq!(masked(&resident_full), masked(&spill_full));
        det_assert_eq!(masked(&resident_hunt), masked(&spill_hunt));
        det_assert!(spill_full.stats.peak_bytes <= resident_full.stats.peak_bytes);
    }
}

det_prop! {
    fn property_reports_are_spill_and_worker_invariant(cases = 6, seed in 0u64..1_000_000, w in 1usize..9) {
        // The property layer reads reports and graphs, never the table
        // internals: a checker fed by any engine configuration must emit
        // byte-identical PropertyReport JSON. (The graph builder itself is
        // sequential and resident; what this pins is that the spilled
        // search agrees with the graph on the space it summarizes.)
        use impossible_explore::property::eventually;
        use impossible_explore::Checker;
        let sys = Grid { n: 3, max: 3 };
        let g = Search::new(&sys).seed(seed).graph();
        let full = |s: &Vec<u8>| s.iter().all(|&c| c == 3);
        let report = Checker::new(&g).check(&eventually("saturates", full));
        let again = Checker::new(&g).check(&eventually("saturates", full));
        det_assert_eq!(report.to_json(), again.to_json());
        // Cross-check the spilled search against the graph's census.
        let dir = tmp(&format!("spill-prop-{seed}-{w}"));
        let spilled = Search::new(&sys)
            .seed(seed)
            .workers(w)
            .explore_extmem(&SpillPolicy::new(dir).ram_keys(64));
        det_assert_eq!(spilled.num_states, g.len());
        det_assert_eq!(spilled.num_transitions, g.num_edges());
    }
}

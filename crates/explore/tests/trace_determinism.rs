//! Pins the trace determinism contract (docs/OBS.md): search traces are a
//! pure function of `(system, bounds, seed, canon, partitions)` — the
//! worker count never changes a byte of JSONL — and `trace_diff`
//! localizes a deliberately seeded divergence to the exact event.

use impossible_explore::{Grid, Search};
use impossible_obs::{trace_diff, RingTracer, TraceDiff};

fn search_trace(workers: usize, seed: u64, max: u8) -> String {
    let sys = Grid { n: 3, max };
    let mut tracer = RingTracer::new(4096);
    let r = Search::new(&sys)
        .workers(workers)
        .seed(seed)
        .search_traced(|s| s.iter().all(|&c| c == max), &mut tracer);
    assert!(r.witness.is_some(), "corner reachable");
    assert_eq!(tracer.dropped(), 0, "trace fits the ring");
    tracer.to_jsonl()
}

fn explore_trace(max: u8) -> Vec<impossible_obs::Event> {
    let sys = Grid { n: 2, max };
    let mut tracer = RingTracer::new(4096);
    let r = Search::new(&sys).explore_traced(&mut tracer);
    assert!(!r.truncated());
    tracer.into_events()
}

#[test]
fn traces_are_byte_identical_for_1_2_8_workers() {
    let one = search_trace(1, 42, 4);
    let two = search_trace(2, 42, 4);
    let eight = search_trace(8, 42, 4);
    assert_eq!(one, two, "1 vs 2 workers");
    assert_eq!(one, eight, "1 vs 8 workers");
    // The invariance is byte-level on the canonical JSONL encoding, and the
    // trace is non-trivial (spans + counters for every level).
    assert!(one.lines().count() > 10, "trace has real content:\n{one}");
    assert!(one.contains("\"kind\":\"level.exit\""));
    assert!(one.contains("\"kind\":\"found\""));
}

#[test]
fn truncated_traces_are_byte_identical_for_1_2_8_workers() {
    // A state cap that binds mid-level routes inserts through the
    // sequential exact-cap path on the straddling level and the worker-local
    // shard path everywhere else; the emitted trace (including the
    // `truncate` event's position) must not reveal which was which.
    let render = |workers: usize| {
        let sys = Grid { n: 3, max: 4 };
        let mut tracer = RingTracer::new(4096);
        let r = Search::new(&sys)
            .workers(workers)
            .max_states(73)
            .explore_traced(&mut tracer);
        assert!(r.truncated());
        assert_eq!(r.num_states, 73);
        tracer.to_jsonl()
    };
    let one = render(1);
    assert_eq!(one, render(2), "1 vs 2 workers");
    assert_eq!(one, render(8), "1 vs 8 workers");
    assert!(one.contains("\"kind\":\"truncate\""));
}

#[test]
fn trace_event_kinds_are_pinned_for_a_small_search() {
    // The event schema is part of the contract: a search that finds its
    // witness at depth 4 on the 3x3 grid emits exactly this span sequence.
    let sys = Grid { n: 2, max: 2 };
    let mut tracer = RingTracer::new(4096);
    let r = Search::new(&sys).search_traced(|s| s.iter().all(|&c| c == 2), &mut tracer);
    assert_eq!(r.witness.expect("corner reachable").len(), 4);
    let kinds: Vec<&str> = tracer.events().iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(
        kinds,
        [
            "start",
            "init",
            "level.enter",
            "level.exit", // level 0
            "level.enter",
            "level.exit", // level 1
            "level.enter",
            "level.exit", // level 2
            "level.enter",
            "found",
            "level.exit", // level 3: the corner appears at depth 4
            "end",
        ]
    );
    // Sequence stamps are the logical clock: 0..n with no gaps.
    for (i, e) in tracer.events().iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
}

#[test]
fn different_fingerprint_seeds_diverge_at_the_start_event() {
    let sys = Grid { n: 2, max: 3 };
    let mut a = RingTracer::new(4096);
    let mut b = RingTracer::new(4096);
    let _ = Search::new(&sys).seed(1).explore_traced(&mut a);
    let _ = Search::new(&sys).seed(2).explore_traced(&mut b);
    match trace_diff(a.events(), b.events()) {
        TraceDiff::Diverged { index, left, right } => {
            // The seed is stamped into the start event, so runs keyed
            // differently are distinguishable from event 0.
            assert_eq!(index, 0);
            assert_eq!(left.unwrap().kind, "start");
            assert_eq!(right.unwrap().kind, "start");
        }
        other => panic!("seeds 1 and 2 must diverge, got {other:?}"),
    }
}

#[test]
fn structural_divergence_is_localized_to_the_exact_event() {
    // Two grids that agree for the first three levels (every counter
    // profile with sum <= 3 is legal in both) and first differ when the
    // smaller grid saturates a counter at level 3: max=3 loses transitions
    // the max=4 grid still has, so the first divergent event is the
    // level-3 `level.exit` — event index 9 (start, init, then
    // enter/exit per level).
    let a = explore_trace(3);
    let b = explore_trace(4);
    match trace_diff(&a, &b) {
        TraceDiff::Diverged { index, left, right } => {
            assert_eq!(index, 9, "diverges at the level-3 exit");
            let (l, r) = (left.unwrap(), right.unwrap());
            assert_eq!(l.kind, "level.exit");
            assert_eq!(r.kind, "level.exit");
            // Same span position, different counters: the diff names the
            // exact level where the two spaces stop agreeing.
            assert_eq!(l.fields[0], ("level".to_string(), 3usize.into()));
            assert_ne!(l.fields, r.fields);
        }
        other => panic!("different grids must diverge, got {other:?}"),
    }
}

#[test]
fn jsonl_round_trips_through_the_parser() {
    // The diff workflow reads dumps back from disk; parse(to_jsonl) must be
    // the identity on every event a real engine emits.
    let sys = Grid { n: 2, max: 3 };
    let mut tracer = RingTracer::new(4096);
    let _ = Search::new(&sys).search_traced(|s| s == &vec![3, 3], &mut tracer);
    let jsonl = tracer.to_jsonl();
    let parsed: Vec<_> = jsonl
        .lines()
        .map(|l| impossible_obs::Event::parse_jsonl(l).expect("canonical line"))
        .collect();
    assert_eq!(parsed, tracer.into_events());
}

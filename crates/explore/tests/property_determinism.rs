//! The property layer's determinism contract: SCC decomposition, verdicts
//! and lasso witnesses are byte-identical for any worker count and any
//! fingerprint seed, and the `PropertyReport` JSON rendering is pinned.
//!
//! Worker count and seed reach the checker only through the graph builder,
//! which is exact (fingerprints are an index acceleration with equality
//! fallback) and assigns indices in sequential BFS discovery order; the
//! checker then visits vertices in index order and neighbors in
//! successor-list order. Nothing downstream of `Search::new` may change a
//! byte of the report. `DET_SEED` replays the property cases.

use impossible_det::{det_assert, det_assert_eq, det_prop};
use impossible_explore::property::{eventually, leads_to, never, Checker};
use impossible_explore::{Encode, FpHasher, Grid, Search};
use impossible_core::system::System;

/// A hub state fanning out into three disjoint cycles ("gears") of
/// lengths 2, 3 and 4 — one acyclic SCC plus three cyclic ones, so the
/// checker's head choice, stem and cycle construction all get exercised.
struct Gears;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct G(u8, u8); // (ring, position); ring 0 is the hub

impl Encode for G {
    fn encode(&self, h: &mut FpHasher) {
        self.0.encode(h);
        self.1.encode(h);
    }
}

const LENS: [u8; 3] = [2, 3, 4];

impl System for Gears {
    type State = G;
    type Action = u8;
    fn initial_states(&self) -> Vec<G> {
        vec![G(0, 0)]
    }
    fn enabled(&self, s: &G) -> Vec<u8> {
        match s.0 {
            0 => vec![1, 2, 3], // enter a ring
            _ => vec![0],       // advance around it
        }
    }
    fn step(&self, s: &G, a: &u8) -> G {
        match s.0 {
            0 => G(*a, 0),
            r => G(r, (s.1 + 1) % LENS[(r - 1) as usize]),
        }
    }
}

/// One safety and two liveness checks, rendered to canonical JSON. The
/// concatenation is the byte-level comparison unit.
fn render_all(workers: usize, seed: u64) -> String {
    let g = Search::new(&Gears).workers(workers).seed(seed).graph();
    let checker = Checker::new(&g);
    let live = checker.check(&eventually("stops", |_: &G| false)).to_json();
    let resp = checker
        .check(&leads_to("ring3-hub", |s: &G| s.0 == 3, |s: &G| s.0 == 0))
        .to_json();
    let grid = Grid { n: 3, max: 3 };
    let safe = Search::new(&grid)
        .workers(workers)
        .seed(seed)
        .check_property(&never("diagonal", |s: &Vec<u8>| s.iter().all(|&x| x == 2)))
        .to_json();
    format!("{live}\n{resp}\n{safe}")
}

#[test]
fn property_reports_are_byte_identical_for_1_2_and_8_workers() {
    let baseline = render_all(1, impossible_explore::DEFAULT_SEED);
    for workers in [2, 8] {
        assert_eq!(
            baseline,
            render_all(workers, impossible_explore::DEFAULT_SEED),
            "worker count {workers} changed the property bytes"
        );
    }
}

det_prop! {
    fn any_seed_any_split_same_property_bytes(cases = 12, seed in 0u64..1_000_000, w in 2usize..9) {
        let sequential = render_all(1, impossible_explore::DEFAULT_SEED);
        let parallel = render_all(w, seed);
        det_assert_eq!(sequential, parallel);
        det_assert!(sequential.contains("\"type\":\"lasso\""), "liveness case must produce a lasso");
    }
}

det_prop! {
    fn scc_decomposition_is_seed_and_split_invariant(cases = 12, seed in 0u64..1_000_000, w in 1usize..9) {
        // The decomposition stats (region, sccs, candidates) are part of
        // the report; pin them directly across seeds and splits.
        let g = Search::new(&Gears).workers(w).seed(seed).graph();
        let r = Checker::new(&g).check(&eventually("stops", |_: &G| false));
        det_assert_eq!(r.region, 10);
        det_assert_eq!(r.sccs, 4);
        det_assert_eq!(r.candidate_sccs, 3);
    }
}

#[test]
fn lasso_report_json_is_pinned() {
    // The full canonical rendering, byte for byte: the head is the gear
    // nearest the hub (ring 1, BFS order), the cycle walks it once.
    let r = Search::new(&Gears).check_property(&eventually("stops", |_: &G| false));
    assert_eq!(
        r.to_json(),
        "{\"name\":\"stops\",\"kind\":\"eventually\",\"holds\":false,\
         \"states\":10,\"edges\":12,\"region\":10,\"sccs\":4,\"candidate_sccs\":3,\
         \"truncated\":false,\"counterexample\":{\"type\":\"lasso\",\"pivot\":null,\
         \"stem_states\":[\"G(0, 0)\",\"G(1, 0)\"],\"stem_actions\":[\"1\"],\
         \"cycle_actions\":[\"0\",\"0\"],\"cycle_states\":[\"G(1, 1)\",\"G(1, 0)\"]}}"
    );
}

#[test]
fn leads_to_report_json_is_pinned() {
    // leads_to stamps the pivot: the ring-3 entry that the hub never
    // answers, then the length-4 gear cycle avoiding the hub forever.
    let r = Search::new(&Gears)
        .check_property(&leads_to("ring3-hub", |s: &G| s.0 == 3, |s: &G| s.0 == 0));
    assert_eq!(
        r.to_json(),
        "{\"name\":\"ring3-hub\",\"kind\":\"leads-to\",\"holds\":false,\
         \"states\":10,\"edges\":12,\"region\":9,\"sccs\":3,\"candidate_sccs\":3,\
         \"truncated\":false,\"counterexample\":{\"type\":\"lasso\",\"pivot\":1,\
         \"stem_states\":[\"G(0, 0)\",\"G(3, 0)\"],\"stem_actions\":[\"3\"],\
         \"cycle_actions\":[\"0\",\"0\",\"0\",\"0\"],\
         \"cycle_states\":[\"G(3, 1)\",\"G(3, 2)\",\"G(3, 3)\",\"G(3, 0)\"]}}"
    );
}

#[test]
fn bad_state_report_json_is_pinned() {
    let r = Search::new(&Gears).check_property(&never("enters-ring-2", |s: &G| s.0 == 2));
    assert_eq!(
        r.to_json(),
        "{\"name\":\"enters-ring-2\",\"kind\":\"never\",\"holds\":false,\
         \"states\":10,\"edges\":12,\"region\":3,\"sccs\":0,\"candidate_sccs\":0,\
         \"truncated\":false,\"counterexample\":{\"type\":\"bad-state\",\
         \"states\":[\"G(0, 0)\",\"G(2, 0)\"],\"actions\":[\"2\"]}}"
    );
}

#[test]
fn holding_report_json_is_pinned() {
    let r = Search::new(&Gears).check_property(&eventually("leaves-hub", |s: &G| s.0 != 0));
    assert_eq!(
        r.to_json(),
        "{\"name\":\"leaves-hub\",\"kind\":\"eventually\",\"holds\":true,\
         \"states\":10,\"edges\":12,\"region\":1,\"sccs\":1,\"candidate_sccs\":0,\
         \"truncated\":false,\"counterexample\":null}"
    );
}

//! The determinism contract: the same search under the same seed produces
//! byte-identical reports, witnesses and stats for **any** worker count.
//!
//! The parallel frontier partitions each BFS level by `fingerprint %
//! DEFAULT_PARTITIONS` (a constant independent of the pool size) and merges
//! worker outputs in strict partition order, so worker count affects *who*
//! expands a partition but never the merged byte stream. `DET_SEED` replays
//! the property cases.

use impossible_det::{det_assert, det_assert_eq, det_prop};
use impossible_explore::{Grid, Search, SearchReport};

/// Debug strings are the byte-level comparison: every field, every witness
/// state and action, formatted identically or not at all.
fn run(workers: usize, seed: u64) -> (String, String) {
    let sys = Grid { n: 4, max: 3 };
    let full = Search::new(&sys).workers(workers).seed(seed).explore();
    let hunt = Search::new(&sys)
        .workers(workers)
        .seed(seed)
        .search(|s| s.iter().all(|&c| c == 3));
    (strip_workers(&full), strip_workers(&hunt))
}

/// Everything except `stats.workers` (which records the pool size by
/// design) must match byte-for-byte.
fn strip_workers(r: &SearchReport<Vec<u8>, usize>) -> String {
    let mut stats = r.stats;
    stats.workers = 0;
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.num_states, r.num_transitions, r.terminal_states, r.truncated_by, r.witness, stats
    )
}

#[test]
fn reports_are_byte_identical_for_1_2_and_8_workers() {
    let baseline = run(1, impossible_explore::DEFAULT_SEED);
    for workers in [2, 8] {
        let got = run(workers, impossible_explore::DEFAULT_SEED);
        assert_eq!(baseline, got, "worker count {workers} changed the bytes");
    }
}

#[test]
fn truncated_searches_are_also_worker_invariant() {
    // Truncation interacts with merge order; pin it across pool sizes.
    let sys = Grid { n: 4, max: 4 };
    let render = |workers: usize| {
        let r = Search::new(&sys).max_states(97).workers(workers).explore();
        assert_eq!(r.num_states, 97);
        strip_workers(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

det_prop! {
    fn any_seed_any_split_same_bytes(cases = 12, seed in 0u64..1_000_000, w in 2usize..9) {
        let sequential = run(1, seed);
        let parallel = run(w, seed);
        det_assert_eq!(sequential.0, parallel.0);
        det_assert_eq!(sequential.1, parallel.1);
        det_assert!(!sequential.0.is_empty(), "report must render");
    }
}

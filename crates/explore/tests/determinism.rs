//! The determinism contract: the same search under the same seed produces
//! byte-identical reports, witnesses and stats for **any** worker count.
//!
//! The parallel frontier partitions each BFS level by `fingerprint %
//! DEFAULT_PARTITIONS` (a constant independent of the pool size) and merges
//! worker outputs in strict partition order, so worker count affects *who*
//! expands a partition but never the merged byte stream. `DET_SEED` replays
//! the property cases.

use impossible_det::{det_assert, det_assert_eq, det_prop, DetRng};
use impossible_explore::{Cap, FpMap, Grid, Search, SearchReport, ShardedFpMap};

/// Debug strings are the byte-level comparison: every field, every witness
/// state and action, formatted identically or not at all.
fn run(workers: usize, seed: u64) -> (String, String) {
    let sys = Grid { n: 4, max: 3 };
    let full = Search::new(&sys).workers(workers).seed(seed).explore();
    let hunt = Search::new(&sys)
        .workers(workers)
        .seed(seed)
        .search(|s| s.iter().all(|&c| c == 3));
    (strip_workers(&full), strip_workers(&hunt))
}

/// Everything except `stats.workers` (which records the pool size by
/// design) must match byte-for-byte.
fn strip_workers(r: &SearchReport<Vec<u8>, usize>) -> String {
    let mut stats = r.stats;
    stats.workers = 0;
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.num_states, r.num_transitions, r.terminal_states, r.truncated_by, r.witness, stats
    )
}

#[test]
fn reports_are_byte_identical_for_1_2_and_8_workers() {
    let baseline = run(1, impossible_explore::DEFAULT_SEED);
    for workers in [2, 8] {
        let got = run(workers, impossible_explore::DEFAULT_SEED);
        assert_eq!(baseline, got, "worker count {workers} changed the bytes");
    }
}

#[test]
fn truncated_searches_are_also_worker_invariant() {
    // Truncation interacts with merge order; pin it across pool sizes.
    let sys = Grid { n: 4, max: 4 };
    let render = |workers: usize| {
        let r = Search::new(&sys).max_states(97).workers(workers).explore();
        assert_eq!(r.num_states, 97);
        strip_workers(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

det_prop! {
    fn any_seed_any_split_same_bytes(cases = 12, seed in 0u64..1_000_000, w in 2usize..9) {
        let sequential = run(1, seed);
        let parallel = run(w, seed);
        det_assert_eq!(sequential.0, parallel.0);
        det_assert_eq!(sequential.1, parallel.1);
        det_assert!(!sequential.0.is_empty(), "report must render");
    }
}

#[test]
fn cap_straddling_levels_are_worker_invariant_and_counted() {
    // A cap that lands mid-level forces the sequential exact-cap insert
    // path on the straddling level; everything before it runs worker-local.
    // The report — including the new `cap_fallbacks` counter — must not
    // depend on which path any particular worker count took.
    let sys = Grid { n: 4, max: 4 };
    let render = |workers: usize| {
        let r = Search::new(&sys).max_states(301).workers(workers).explore();
        assert_eq!(r.num_states, 301);
        assert!(r.truncated());
        assert!(r.stats.cap_fallbacks > 0, "the cap did bind somewhere");
        strip_workers(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));

    // An uncapped run of the same space never falls back.
    let free = Search::new(&sys).workers(8).explore();
    assert_eq!(free.stats.cap_fallbacks, 0);
}

#[test]
fn collision_audit_is_worker_invariant() {
    // Audit mode forces the sequential insert path (it snapshots full
    // states in insert order); the produced report must still be
    // byte-identical to every other worker count's.
    let sys = Grid { n: 3, max: 3 };
    let render = |workers: usize| {
        let r = Search::new(&sys)
            .workers(workers)
            .collision_audit(true)
            .search(|s| s.iter().all(|&c| c == 3));
        strip_workers(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

det_prop! {
    fn sharded_iteration_equals_flat_iteration(cases = 24, seed in 0u64..u64::MAX, shards in 1usize..9, n in 0usize..400) {
        // The deterministic aggregate order: a ShardedFpMap's merged
        // iteration must equal a flat FpMap's ordered iteration on the same
        // (random) fingerprint set, for any shard count.
        let mut rng = DetRng::seed_from_u64(seed);
        let mut flat: FpMap<u64> = FpMap::new();
        let mut sharded: ShardedFpMap<u64> = ShardedFpMap::new(shards * 8);
        for i in 0..n {
            // A narrow range on purpose: collisions exercise the dedup arm.
            let fp = rng.bounded_u64(1 + n as u64 * 2);
            flat.try_insert_with(fp, Cap::Unbounded, || i as u64);
            sharded.try_insert_with(fp, Cap::Unbounded, || i as u64);
        }
        det_assert_eq!(flat.len(), sharded.len());
        let a: Vec<(u64, u64)> = flat.iter_ordered().map(|(k, &v)| (k, v)).collect();
        let b: Vec<(u64, u64)> = sharded.iter_ordered().map(|(k, &v)| (k, v)).collect();
        det_assert_eq!(a, b);
        det_assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "strictly ascending");
    }
}

//! The determinism contract: the same search under the same seed produces
//! byte-identical reports, witnesses and stats for **any** worker count.
//!
//! The parallel frontier partitions each BFS level by `fingerprint %
//! DEFAULT_PARTITIONS` (a constant independent of the pool size) and merges
//! worker outputs in strict partition order, so worker count affects *who*
//! expands a partition but never the merged byte stream. `DET_SEED` replays
//! the property cases.

use impossible_det::{det_assert, det_assert_eq, det_prop, DetRng};
use impossible_explore::{
    Cap, FpMap, Grid, PauseBudget, Resumable, Search, SearchReport, ShardedFpMap,
};

/// Debug strings are the byte-level comparison: every field, every witness
/// state and action, formatted identically or not at all.
fn run(workers: usize, seed: u64) -> (String, String) {
    let sys = Grid { n: 4, max: 3 };
    let full = Search::new(&sys).workers(workers).seed(seed).explore();
    let hunt = Search::new(&sys)
        .workers(workers)
        .seed(seed)
        .search(|s| s.iter().all(|&c| c == 3));
    (strip_workers(&full), strip_workers(&hunt))
}

/// Everything except `stats.workers` and the steal counters (all three
/// record the pool size / claim-protocol shape by design — deterministic
/// *at* a worker count, deliberately different *across* worker counts) must
/// match byte-for-byte.
fn strip_workers(r: &SearchReport<Vec<u8>, usize>) -> String {
    let mut stats = r.stats;
    stats.workers = 0;
    stats.steals = 0;
    stats.stolen_shards = 0;
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.num_states, r.num_transitions, r.terminal_states, r.truncated_by, r.witness, stats
    )
}

#[test]
fn reports_are_byte_identical_for_1_2_and_8_workers() {
    let baseline = run(1, impossible_explore::DEFAULT_SEED);
    for workers in [2, 8] {
        let got = run(workers, impossible_explore::DEFAULT_SEED);
        assert_eq!(baseline, got, "worker count {workers} changed the bytes");
    }
}

#[test]
fn truncated_searches_are_also_worker_invariant() {
    // Truncation interacts with merge order; pin it across pool sizes.
    let sys = Grid { n: 4, max: 4 };
    let render = |workers: usize| {
        let r = Search::new(&sys).max_states(97).workers(workers).explore();
        assert_eq!(r.num_states, 97);
        strip_workers(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

#[test]
fn single_worker_runs_never_steal() {
    // Pinned regression: the claim protocol is bypassed entirely at w=1
    // (and for degenerate item counts), so a sequential run must report
    // exactly zero steal activity — both in explore and in a witness hunt.
    let sys = Grid { n: 4, max: 3 };
    let full = Search::new(&sys).workers(1).explore();
    assert_eq!(full.stats.steals, 0);
    assert_eq!(full.stats.stolen_shards, 0);
    let hunt = Search::new(&sys)
        .workers(1)
        .search(|s| s.iter().all(|&c| c == 3));
    assert_eq!(hunt.stats.steals, 0);
    assert_eq!(hunt.stats.stolen_shards, 0);
}

#[test]
fn steal_counters_are_derivable_from_the_report() {
    // Each expanded level submits two parallel passes of `partitions`
    // items (minus one pass per cap-fallback level, which runs the exact
    // sequential insert instead). A pass with W workers claims
    // min(W, partitions) shards eagerly; the remainder are steals. The
    // counters are therefore a pure function of the report's own
    // `levels`/`cap_fallbacks`/`partitions` — schedule noise must never
    // leak in, and repeated runs must agree to the byte.
    let sys = Grid { n: 4, max: 3 };
    for w in [2usize, 8] {
        let r = Search::new(&sys).workers(w).explore();
        assert_eq!(r.stats.cap_fallbacks, 0, "uncapped run");
        let passes = 2 * r.stats.levels;
        let per_pass = r.stats.partitions - w.min(r.stats.partitions);
        assert!(r.stats.steals > 0, "w={w} ran the claim protocol");
        assert_eq!(r.stats.steals, passes, "w={w}");
        assert_eq!(r.stats.stolen_shards, passes * per_pass, "w={w}");
        let again = Search::new(&sys).workers(w).explore();
        assert_eq!(r.stats.steals, again.stats.steals);
        assert_eq!(r.stats.stolen_shards, again.stats.stolen_shards);
    }
}

#[test]
fn cap_fallback_levels_skip_the_second_steal_pass() {
    // When the cap forces the sequential exact-insert fallback, that
    // level runs only one parallel pass — the steal counters must track
    // `2 * levels - cap_fallbacks`, not `2 * levels`.
    let sys = Grid { n: 4, max: 4 };
    let r = Search::new(&sys).max_states(301).workers(2).explore();
    assert!(r.stats.cap_fallbacks > 0, "the cap must bind mid-level");
    let passes = 2 * r.stats.levels - r.stats.cap_fallbacks;
    let per_pass = r.stats.partitions - 2;
    assert_eq!(r.stats.steals, passes);
    assert_eq!(r.stats.stolen_shards, passes * per_pass);
}

det_prop! {
    fn any_seed_any_split_same_bytes(cases = 12, seed in 0u64..1_000_000, w in 2usize..9) {
        let sequential = run(1, seed);
        let parallel = run(w, seed);
        det_assert_eq!(sequential.0, parallel.0);
        det_assert_eq!(sequential.1, parallel.1);
        det_assert!(!sequential.0.is_empty(), "report must render");
    }
}

#[test]
fn cap_straddling_levels_are_worker_invariant_and_counted() {
    // A cap that lands mid-level forces the sequential exact-cap insert
    // path on the straddling level; everything before it runs worker-local.
    // The report — including the new `cap_fallbacks` counter — must not
    // depend on which path any particular worker count took.
    let sys = Grid { n: 4, max: 4 };
    let render = |workers: usize| {
        let r = Search::new(&sys).max_states(301).workers(workers).explore();
        assert_eq!(r.num_states, 301);
        assert!(r.truncated());
        assert!(r.stats.cap_fallbacks > 0, "the cap did bind somewhere");
        strip_workers(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));

    // An uncapped run of the same space never falls back.
    let free = Search::new(&sys).workers(8).explore();
    assert_eq!(free.stats.cap_fallbacks, 0);
}

#[test]
fn collision_audit_is_worker_invariant() {
    // Audit mode forces the sequential insert path (it snapshots full
    // states in insert order); the produced report must still be
    // byte-identical to every other worker count's.
    let sys = Grid { n: 3, max: 3 };
    let render = |workers: usize| {
        let r = Search::new(&sys)
            .workers(workers)
            .collision_audit(true)
            .search(|s| s.iter().all(|&c| c == 3));
        strip_workers(&r)
    };
    let one = render(1);
    assert_eq!(one, render(2));
    assert_eq!(one, render(8));
}

#[test]
fn paused_and_resumed_run_matches_uninterrupted_bytes() {
    // The core resume contract: pause at a state budget, resume (under a
    // different worker count), and the final report is byte-identical to
    // the uninterrupted run.
    let sys = Grid { n: 4, max: 3 };
    let straight = Search::new(&sys).workers(2).explore();
    let ckpt = Search::new(&sys)
        .workers(1)
        .run_resumable(PauseBudget::states(60))
        .paused()
        .expect("60 < 256 states: must pause");
    assert!(ckpt.num_states() >= 60);
    assert!(ckpt.frontier_len() > 0);
    let resumed = Search::new(&sys)
        .workers(2)
        .resume(ckpt, PauseBudget::never())
        .done()
        .expect("never-budget resume runs to completion");
    assert_eq!(strip_workers(&straight), strip_workers(&resumed));
}

#[test]
fn checkpoints_are_worker_count_invariant() {
    // The suspended state itself — not just the final report — must be
    // equal across worker counts: canonical shard pages + partition-ordered
    // frontier make the checkpoint a pure function of (system, seed,
    // partitions, budget).
    let sys = Grid { n: 4, max: 3 };
    let take = |workers: usize| {
        Search::new(&sys)
            .workers(workers)
            .run_resumable(PauseBudget::states(60))
            .paused()
            .expect("must pause")
    };
    let one = take(1);
    assert_eq!(one, take(2));
    assert_eq!(one, take(8));
}

#[test]
fn resume_preserves_cap_truncation_and_fallback_counters() {
    // Satellite: a run stopped by `Truncation::States` exactly at the cap
    // must report the same `truncated_by`/`cap_fallbacks` whether the cap
    // bound before the pause, on the resumed side, or with no pause at all
    // — the resumable path runs the very same level loop as the fused path.
    let sys = Grid { n: 4, max: 4 };
    let straight = Search::new(&sys).max_states(301).workers(1).explore();
    assert_eq!(straight.num_states, 301);
    assert!(straight.truncated());
    assert!(straight.stats.cap_fallbacks > 0);

    for pause_at in [60, 200, 290] {
        let ckpt = Search::new(&sys)
            .max_states(301)
            .workers(1)
            .run_resumable(PauseBudget::states(pause_at))
            .paused()
            .expect("pause budget below the cap must pause");
        for workers in [1, 2, 8] {
            let resumed = Search::new(&sys)
                .max_states(301)
                .workers(workers)
                .resume(ckpt.clone(), PauseBudget::never())
                .done()
                .expect("resume to completion");
            assert_eq!(resumed.truncated_by, straight.truncated_by);
            assert_eq!(
                resumed.stats.cap_fallbacks, straight.stats.cap_fallbacks,
                "pause_at={pause_at} workers={workers}"
            );
            assert_eq!(strip_workers(&straight), strip_workers(&resumed));
        }
    }
}

#[test]
fn chained_pauses_reach_the_same_bytes() {
    // Resume may itself pause; an arbitrary chain of budgets must land on
    // the uninterrupted bytes.
    let sys = Grid { n: 4, max: 3 };
    let straight = Search::new(&sys).explore();
    let mut state = Search::new(&sys).run_resumable(PauseBudget::levels(1));
    let mut hops = 0usize;
    let report = loop {
        match state {
            Resumable::Done(r) => break r,
            Resumable::Paused(ckpt) => {
                hops += 1;
                assert!(hops <= 32, "chain must terminate");
                state = Search::new(&sys).resume(ckpt, PauseBudget::levels(ckpt_next(hops)));
            }
        }
    };
    assert!(hops >= 2, "the chain actually paused repeatedly");
    assert_eq!(strip_workers(&straight), strip_workers(&report));
}

/// Budget schedule for the chained-pause test: one more level per hop.
fn ckpt_next(hop: usize) -> usize {
    hop + 1
}

det_prop! {
    fn pause_resume_is_byte_identical_for_any_budget(cases = 10, seed in 0u64..1_000_000, pause_at in 10usize..250, w1 in 1usize..9, w2 in 1usize..9) {
        let sys = Grid { n: 4, max: 3 };
        let straight = Search::new(&sys).seed(seed).workers(w1).explore();
        match Search::new(&sys).seed(seed).workers(w1).run_resumable(PauseBudget::states(pause_at)) {
            Resumable::Done(r) => {
                // Budget past the space: the resumable path must agree anyway.
                det_assert_eq!(strip_workers(&straight), strip_workers(&r));
            }
            Resumable::Paused(ckpt) => {
                let resumed = Search::new(&sys)
                    .seed(seed)
                    .workers(w2)
                    .resume(ckpt, PauseBudget::never())
                    .done()
                    .expect("resume to completion");
                det_assert_eq!(strip_workers(&straight), strip_workers(&resumed));
            }
        }
    }
}

det_prop! {
    fn sharded_iteration_equals_flat_iteration(cases = 24, seed in 0u64..u64::MAX, shards in 1usize..9, n in 0usize..400) {
        // The deterministic aggregate order: a ShardedFpMap's merged
        // iteration must equal a flat FpMap's ordered iteration on the same
        // (random) fingerprint set, for any shard count.
        let mut rng = DetRng::seed_from_u64(seed);
        let mut flat: FpMap<u64> = FpMap::new();
        let mut sharded: ShardedFpMap<u64> = ShardedFpMap::new(shards * 8);
        for i in 0..n {
            // A narrow range on purpose: collisions exercise the dedup arm.
            let fp = rng.bounded_u64(1 + n as u64 * 2);
            flat.try_insert_with(fp, Cap::Unbounded, || i as u64);
            sharded.try_insert_with(fp, Cap::Unbounded, || i as u64);
        }
        det_assert_eq!(flat.len(), sharded.len());
        let a: Vec<(u64, u64)> = flat.iter_ordered().map(|(k, &v)| (k, v)).collect();
        let b: Vec<(u64, u64)> = sharded.iter_ordered().map(|(k, &v)| (k, v)).collect();
        det_assert_eq!(a, b);
        det_assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "strictly ascending");
    }
}

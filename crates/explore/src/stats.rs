//! Per-run search counters with deterministic JSON export.
//!
//! Everything here is a pure count of search events — no wall-clock times
//! (the workspace's `det-time` lint bans ambient clocks outside the bench
//! harness). Throughput (states/sec) is derived where timing is legitimate:
//! `crates/bench` divides [`SearchStats::expansions`] by its own measured
//! wall time and records both in `BENCH_5.json`.

/// Counters for one `Search` run.
///
/// Field order below is the JSON key order; [`SearchStats::to_json`] is
/// byte-deterministic for equal runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Search strategy: `"bfs"` or `"iddfs"`.
    pub strategy: &'static str,
    /// Worker threads configured (output-invariant; recorded for the log).
    pub workers: usize,
    /// Fixed partition count the frontier is split across.
    pub partitions: usize,
    /// Fingerprint seed.
    pub seed: u64,
    /// BFS levels completed / maximum IDDFS depth reached.
    pub levels: usize,
    /// States expanded (`enabled` calls; IDDFS counts revisits).
    pub expansions: usize,
    /// Transitions that led to an already-fingerprinted state.
    pub dedup_hits: usize,
    /// Successors changed by the canonicalization hook (orbit collapses).
    pub canon_hits: usize,
    /// Largest frontier (BFS) / deepest path (IDDFS) held at once.
    pub peak_frontier: usize,
    /// BFS levels where the `max_states` cap could have bound
    /// (`visited + level children > max_states`), forcing the sequential
    /// exact-cap insert path instead of worker-local shard inserts. A pure
    /// function of the space and bounds — never of the worker count.
    pub cap_fallbacks: usize,
    /// Peak bytes held by the visited set and frontier together, sampled
    /// at level boundaries. Deterministic *shallow* accounting (table
    /// slots + frontier records at fixed per-item widths — see
    /// `docs/EXTMEM.md`), not an RSS syscall: the same run always reports
    /// the same number, and spilling shards to disk lowers it. The one
    /// stat that legitimately differs between a resident and a spilled run
    /// of the same model — report comparisons mask it.
    pub peak_bytes: usize,
    /// Parallel pool passes in which at least one shard was claimed as a
    /// steal (an idle worker taking a whole shard beyond its first from the
    /// shared claim counter). A deterministic projection of the claim
    /// protocol: a pass over `n` items with `W` workers steals exactly
    /// `n - min(W, n)` of them, so the count is a pure function of the run
    /// shape and worker count — never of thread scheduling. Always 0 at
    /// `workers == 1` (the fused inline path uses no pool). Like
    /// [`SearchStats::workers`], legitimately differs *across* worker
    /// counts; determinism tests zero both before comparing.
    pub steals: usize,
    /// Total whole shards claimed as steals across those passes (same
    /// determinism contract as [`SearchStats::steals`]).
    pub stolen_shards: usize,
}

impl SearchStats {
    pub(crate) fn new(strategy: &'static str, workers: usize, partitions: usize, seed: u64) -> Self {
        SearchStats {
            strategy,
            workers,
            partitions,
            seed,
            levels: 0,
            expansions: 0,
            dedup_hits: 0,
            canon_hits: 0,
            peak_frontier: 0,
            cap_fallbacks: 0,
            peak_bytes: 0,
            steals: 0,
            stolen_shards: 0,
        }
    }

    /// Deterministic single-line JSON: fixed key order, no whitespace
    /// variation, integers only. Equal stats encode to equal bytes.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"strategy\":\"{}\",\"workers\":{},\"partitions\":{},\"seed\":{},\"levels\":{},\"expansions\":{},\"dedup_hits\":{},\"canon_hits\":{},\"peak_frontier\":{},\"cap_fallbacks\":{},\"peak_bytes\":{},\"steals\":{},\"stolen_shards\":{}}}",
            self.strategy,
            self.workers,
            self.partitions,
            self.seed,
            self.levels,
            self.expansions,
            self.dedup_hits,
            self.canon_hits,
            self.peak_frontier,
            self.cap_fallbacks,
            self.peak_bytes,
            self.steals,
            self.stolen_shards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_complete() {
        let mut s = SearchStats::new("bfs", 2, 64, 7);
        s.levels = 3;
        s.expansions = 10;
        s.dedup_hits = 4;
        s.canon_hits = 1;
        s.peak_frontier = 5;
        s.cap_fallbacks = 2;
        s.peak_bytes = 99;
        s.steals = 6;
        s.stolen_shards = 372;
        assert_eq!(
            s.to_json(),
            "{\"strategy\":\"bfs\",\"workers\":2,\"partitions\":64,\"seed\":7,\"levels\":3,\"expansions\":10,\"dedup_hits\":4,\"canon_hits\":1,\"peak_frontier\":5,\"cap_fallbacks\":2,\"peak_bytes\":99,\"steals\":6,\"stolen_shards\":372}"
        );
        // Byte-determinism: same stats, same bytes.
        assert_eq!(s.to_json(), s.clone().to_json());
    }
}

//! The open-addressing fingerprint table behind the visited set.
//!
//! Fingerprints come out of [`crate::fingerprint::FpHasher`] already mixed,
//! so the table indexes them directly: slot `fp & mask`, linear probing,
//! growth at 50% load. Lookups touch one or two cache lines where a
//! `BTreeMap<u64, _>` chases five nodes — on dedup-bound exploration this
//! is most of the engine's speed over the legacy explorer (see
//! `BENCH_3.json`).
//!
//! Determinism: the table is only ever *probed* (by fingerprint) — nothing
//! iterates it — so neither probe order nor growth timing can influence a
//! report. No hashing happens here at all; the key is the fingerprint.
//!
//! The unoccupied sentinel is fingerprint `0`; real zero fingerprints are
//! folded onto key `1`. That conflates a zero-fingerprint state with a
//! one-fingerprint state at the same 2⁻⁶⁴-ish odds as any other fingerprint
//! collision, which the collision policy (and the audit mode that checks
//! it) already covers.

/// A `u64 → V` map keyed by (pre-mixed) fingerprints.
#[derive(Debug, Clone)]
pub struct FpMap<V> {
    keys: Vec<u64>,
    vals: Vec<Option<V>>,
    len: usize,
}

/// Outcome of [`FpMap::try_insert_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryInsert {
    /// The fingerprint was already present; nothing inserted.
    Present,
    /// The map was at `cap` entries; nothing inserted.
    Full,
    /// Inserted.
    Inserted,
}

const EMPTY: u64 = 0;

#[inline]
fn key_of(fp: u64) -> u64 {
    if fp == EMPTY {
        1
    } else {
        fp
    }
}

impl<V> FpMap<V> {
    /// An empty table.
    pub fn new() -> Self {
        FpMap {
            keys: vec![EMPTY; 64],
            vals: (0..64).map(|_| None).collect(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = (key as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == EMPTY || k == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(
            &mut self.vals,
            (0..new_cap).map(|_| None).collect(),
        );
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let i = self.slot(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// Is `fp` present?
    pub fn contains(&self, fp: u64) -> bool {
        let key = key_of(fp);
        self.keys[self.slot(key)] == key
    }

    /// The value stored for `fp`, if any.
    pub fn get(&self, fp: u64) -> Option<&V> {
        let key = key_of(fp);
        let i = self.slot(key);
        if self.keys[i] == key {
            self.vals[i].as_ref()
        } else {
            None
        }
    }

    /// Insert `make()` under `fp` unless present or already holding `cap`
    /// entries. Growth happens only on the insert path: `Present` and
    /// `Full` leave the table's capacity untouched, so a capped search
    /// cannot be made to double its dedup table by hammering it with
    /// duplicates or over-cap insertions.
    pub fn try_insert_with(&mut self, fp: u64, cap: usize, make: impl FnOnce() -> V) -> TryInsert {
        let key = key_of(fp);
        let mut i = self.slot(key);
        if self.keys[i] == key {
            return TryInsert::Present;
        }
        if self.len >= cap {
            return TryInsert::Full;
        }
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
            i = self.slot(key);
        }
        self.keys[i] = key;
        self.vals[i] = Some(make());
        self.len += 1;
        TryInsert::Inserted
    }

    /// The value under `fp`, inserting `make()` first if absent (no cap).
    /// Like [`FpMap::try_insert_with`], growth only happens when an entry
    /// is actually inserted.
    pub fn get_or_insert_with(&mut self, fp: u64, make: impl FnOnce() -> V) -> &mut V {
        let key = key_of(fp);
        let mut i = self.slot(key);
        if self.keys[i] != key {
            if (self.len + 1) * 2 > self.keys.len() {
                self.grow();
                i = self.slot(key);
            }
            self.keys[i] = key;
            self.vals[i] = Some(make());
            self.len += 1;
        }
        self.vals[i].as_mut().expect("occupied slot holds a value")
    }

    /// Current slot count (not entries — see [`FpMap::len`]). Exposed so
    /// tests can assert that non-inserting operations never grow the table.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }
}

impl<V> Default for FpMap<V> {
    fn default() -> Self {
        FpMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_and_dedup() {
        let mut m: FpMap<usize> = FpMap::new();
        for fp in 1..=500u64 {
            assert_eq!(
                m.try_insert_with(fp * 0x9E37_79B9, usize::MAX, || fp as usize),
                TryInsert::Inserted
            );
        }
        assert_eq!(m.len(), 500);
        for fp in 1..=500u64 {
            assert!(m.contains(fp * 0x9E37_79B9));
            assert_eq!(m.get(fp * 0x9E37_79B9), Some(&(fp as usize)));
            assert_eq!(
                m.try_insert_with(fp * 0x9E37_79B9, usize::MAX, || 0),
                TryInsert::Present
            );
        }
        assert!(!m.contains(12345));
        assert_eq!(m.get(12345), None);
    }

    #[test]
    fn cap_refuses_new_entries_but_admits_lookups() {
        let mut m: FpMap<()> = FpMap::new();
        assert_eq!(m.try_insert_with(7, 1, || ()), TryInsert::Inserted);
        assert_eq!(m.try_insert_with(8, 1, || ()), TryInsert::Full);
        assert_eq!(m.try_insert_with(7, 1, || ()), TryInsert::Present);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn zero_fingerprint_folds_onto_key_one() {
        let mut m: FpMap<u8> = FpMap::new();
        assert_eq!(m.try_insert_with(0, 10, || 1), TryInsert::Inserted);
        assert_eq!(m.try_insert_with(1, 10, || 2), TryInsert::Present);
        assert!(m.contains(0) && m.contains(1));
    }

    #[test]
    fn present_and_full_never_grow_the_table() {
        let mut m: FpMap<u64> = FpMap::new();
        // Fill to the 50%-load growth threshold exactly: with 64 slots the
        // next *actual* insert (the 33rd) is the one that must double.
        for fp in 1..=32u64 {
            assert_eq!(m.try_insert_with(fp, usize::MAX, || fp), TryInsert::Inserted);
        }
        assert_eq!(m.capacity(), 64);

        // Regression: these three non-inserting operations used to grow the
        // table before probing, doubling capacity on every duplicate or
        // over-cap hit at the threshold.
        assert_eq!(m.try_insert_with(7, usize::MAX, || 0), TryInsert::Present);
        assert_eq!(m.capacity(), 64, "Present must not grow");
        assert_eq!(m.try_insert_with(1000, 32, || 0), TryInsert::Full);
        assert_eq!(m.capacity(), 64, "Full must not grow");
        assert_eq!(*m.get_or_insert_with(7, || 0), 7);
        assert_eq!(m.capacity(), 64, "get_or_insert on a present key must not grow");

        // The insert that actually lands is the one that doubles.
        assert_eq!(m.try_insert_with(33, usize::MAX, || 33), TryInsert::Inserted);
        assert_eq!(m.capacity(), 128);
        assert_eq!(m.len(), 33);
        for fp in 1..=33u64 {
            assert_eq!(m.get(fp), Some(&fp), "entry {fp} survived the resize");
        }
    }

    #[test]
    fn full_at_threshold_stays_probeable() {
        // A capped map parked at the growth threshold keeps serving
        // lookups and Present/Full verdicts without ever resizing.
        let mut m: FpMap<()> = FpMap::new();
        for fp in 1..=32u64 {
            assert_eq!(m.try_insert_with(fp, 32, || ()), TryInsert::Inserted);
        }
        for round in 0..3 {
            for fp in 1..=32u64 {
                assert_eq!(m.try_insert_with(fp, 32, || ()), TryInsert::Present);
            }
            assert_eq!(m.try_insert_with(100 + round, 32, || ()), TryInsert::Full);
            assert_eq!(m.capacity(), 64);
        }
        assert_eq!(m.len(), 32);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m: FpMap<u64> = FpMap::new();
        for fp in 0..10_000u64 {
            m.get_or_insert_with(fp.wrapping_mul(0x2545_F491_4F6C_DD1D), || fp);
        }
        for fp in 0..10_000u64 {
            let k = fp.wrapping_mul(0x2545_F491_4F6C_DD1D);
            assert_eq!(m.get(k), Some(&fp), "lost {fp}");
        }
    }
}

//! The open-addressing fingerprint tables behind the visited set.
//!
//! Fingerprints come out of [`crate::fingerprint::FpHasher`] already mixed,
//! so the tables index them directly — home slot from the key's high bits
//! (the low bits select the shard), linear probing, growth at 50% load.
//! Lookups touch one or two cache lines where a `BTreeMap<u64, _>` chases
//! five nodes — on dedup-bound exploration this is most of the engine's
//! speed over the legacy explorer (see `BENCH_5.json`).
//!
//! Two table shapes live here:
//!
//! * [`FpMap`] — a single open-addressing table. Still used by the IDDFS
//!   path and as the building block below.
//! * [`ShardedFpMap`] — a fixed number of independent `FpMap` shards, where
//!   fingerprint `fp` lives in shard `fp % shards`. The shard function is
//!   the *same* fixed partition function the search engine uses to split
//!   BFS frontiers, so whichever worker claims partition `k` off the shared
//!   claim counter gets shard `k` with it — dedup and insert run
//!   worker-locally with no locks, and the sequential merge degrades to
//!   stitching per-shard outputs in shard order (see `docs/EXPLORE.md`,
//!   "Sharding & determinism").
//!
//! Determinism: the tables are only ever *probed* (by fingerprint) on hot
//! paths — nothing hot iterates them — so neither probe order nor growth
//! timing can influence a report. The ordered iteration below
//! ([`FpMap::iter_ordered`], [`ShardedFpMap::iter_ordered`]) exists for
//! tests and diagnostics and is defined as ascending key order, which makes
//! the sharded aggregate order equal to the flat table's order for the same
//! key set — pinned by a `det_prop!` sweep in `tests/determinism.rs`.
//!
//! The unoccupied sentinel is fingerprint `0`; real zero fingerprints are
//! folded onto key `1`. That conflates a zero-fingerprint state with a
//! one-fingerprint state at the same 2⁻⁶⁴-ish odds as any other fingerprint
//! collision, which the collision policy (and the audit mode that checks
//! it) already covers.

/// Capacity policy for [`FpMap::try_insert_with`]: either no bound, or an
/// explicit entry cap. Replaces the old `usize::MAX`-as-sentinel
/// convention so "unbounded" is a named case, not a magic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cap {
    /// Inserts never refuse for capacity reasons.
    Unbounded,
    /// At most this many entries; further inserts return
    /// [`TryInsert::Full`].
    At(usize),
}

impl Cap {
    /// Would a table currently holding `len` entries admit one more?
    #[inline]
    pub fn admits(self, len: usize) -> bool {
        match self {
            Cap::Unbounded => true,
            Cap::At(cap) => len < cap,
        }
    }
}

/// A `u64 → V` map keyed by (pre-mixed) fingerprints.
#[derive(Debug, Clone)]
pub struct FpMap<V> {
    keys: Vec<u64>,
    vals: Vec<Option<V>>,
    len: usize,
}

/// Outcome of [`FpMap::try_insert_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryInsert {
    /// The fingerprint was already present; nothing inserted.
    Present,
    /// The map was at its cap; nothing inserted.
    Full,
    /// Inserted.
    Inserted,
}

const EMPTY: u64 = 0;

#[inline]
pub(crate) fn key_of(fp: u64) -> u64 {
    if fp == EMPTY {
        1
    } else {
        fp
    }
}

/// The shard/partition owning fingerprint `fp` out of `shards` — the one
/// routing function shared by [`ShardedFpMap`] and the search engine's
/// frontier partitioner, so whichever worker claims partition `k` holds
/// visited shard `k` exclusively for that pass.
///
/// Routing happens on the *stored key* (fingerprint `0` folds onto `1`,
/// matching the table's sentinel fold): the flat and sharded tables must
/// conflate the same fingerprints, or their aggregate contents could
/// differ on the `0`/`1` edge case.
#[inline]
pub fn shard_index(fp: u64, shards: usize) -> usize {
    // Same mapping either way; the mask branch just spares the hot paths a
    // hardware divide for power-of-two counts (the default is 64), and
    // predicts perfectly since `shards` is fixed per search.
    let key = key_of(fp);
    if shards.is_power_of_two() {
        (key as usize) & (shards - 1)
    } else {
        (key % shards as u64) as usize
    }
}

impl<V> FpMap<V> {
    /// An empty table.
    pub fn new() -> Self {
        FpMap {
            keys: vec![EMPTY; 64],
            vals: (0..64).map(|_| None).collect(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shallow byte footprint of the slot arrays: `capacity × (8 + value
    /// slot width)`. A pure function of the entry set (capacity doubles at
    /// fixed load thresholds), so the same search samples the same number
    /// on every run — the deterministic memory accounting behind
    /// `SearchStats::peak_bytes`, deliberately *not* an RSS syscall.
    pub fn approx_bytes(&self) -> usize {
        self.keys.len() * (8 + std::mem::size_of::<Option<V>>())
    }

    /// Drop every entry and shrink back to the empty table's 64-slot
    /// footprint, releasing the grown slot arrays. The spill path calls
    /// this after paging a shard to disk; `approx_bytes` drops with it.
    pub fn clear(&mut self) {
        self.keys = vec![EMPTY; 64];
        self.vals = (0..64).map(|_| None).collect();
        self.len = 0;
    }

    #[inline]
    fn slot(&self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        // Home slot from the HIGH bits of the (pre-mixed) key. The low bits
        // are spoken for: [`shard_index`] routes on `key % shards`, so
        // inside one shard every key agrees on its low bits — indexing by
        // them would fold the whole shard onto 1/shards of its slots and
        // linear probing would degenerate into one long chain. The high
        // bits are untouched by any small modulus.
        let shift = 64 - self.keys.len().trailing_zeros();
        let mut i = (key >> shift) as usize & mask;
        loop {
            let k = self.keys[i];
            if k == EMPTY || k == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(
            &mut self.vals,
            (0..new_cap).map(|_| None).collect(),
        );
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let i = self.slot(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// Is `fp` present?
    pub fn contains(&self, fp: u64) -> bool {
        let key = key_of(fp);
        self.keys[self.slot(key)] == key
    }

    /// The value stored for `fp`, if any.
    pub fn get(&self, fp: u64) -> Option<&V> {
        let key = key_of(fp);
        let i = self.slot(key);
        if self.keys[i] == key {
            self.vals[i].as_ref()
        } else {
            None
        }
    }

    /// Insert `make()` under `fp` unless present or already at `cap`.
    /// Growth happens only on the insert path: `Present` and `Full` leave
    /// the table's capacity untouched, so a capped search cannot be made to
    /// double its dedup table by hammering it with duplicates or over-cap
    /// insertions.
    pub fn try_insert_with(&mut self, fp: u64, cap: Cap, make: impl FnOnce() -> V) -> TryInsert {
        let key = key_of(fp);
        let mut i = self.slot(key);
        if self.keys[i] == key {
            return TryInsert::Present;
        }
        if !cap.admits(self.len) {
            return TryInsert::Full;
        }
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
            i = self.slot(key);
        }
        self.keys[i] = key;
        self.vals[i] = Some(make());
        self.len += 1;
        TryInsert::Inserted
    }

    /// The value under `fp`, inserting `make()` first if absent (no cap).
    /// Like [`FpMap::try_insert_with`], growth only happens when an entry
    /// is actually inserted.
    pub fn get_or_insert_with(&mut self, fp: u64, make: impl FnOnce() -> V) -> &mut V {
        let key = key_of(fp);
        let mut i = self.slot(key);
        if self.keys[i] != key {
            if (self.len + 1) * 2 > self.keys.len() {
                self.grow();
                i = self.slot(key);
            }
            self.keys[i] = key;
            self.vals[i] = Some(make());
            self.len += 1;
        }
        self.vals[i].as_mut().expect("occupied slot holds a value")
    }

    /// Current slot count (not entries — see [`FpMap::len`]). Exposed so
    /// tests can assert that non-inserting operations never grow the table.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Entries in ascending key order (the stored key: fingerprint `0`
    /// folds onto `1`). O(n log n); for tests and diagnostics, never a hot
    /// path. This is the canonical iteration order both table shapes share.
    pub fn iter_ordered(&self) -> impl Iterator<Item = (u64, &V)> {
        let mut idx: Vec<usize> = (0..self.keys.len())
            .filter(|&i| self.keys[i] != EMPTY)
            .collect();
        idx.sort_by_key(|&i| self.keys[i]);
        idx.into_iter()
            .map(|i| (self.keys[i], self.vals[i].as_ref().expect("occupied")))
    }
}

impl<V> Default for FpMap<V> {
    fn default() -> Self {
        FpMap::new()
    }
}

/// A visited set split into a fixed number of independent [`FpMap`] shards:
/// fingerprint `fp` lives in shard `fp % shards`.
///
/// The shard function is a pure function of the fingerprint — never of the
/// schedule — which is what lets the search engine hand each worker
/// exclusive `&mut` access to whole shards ([`Self::shards_mut`]): a shard
/// is claimed atomically as a unit, mutated by exactly one worker per pass,
/// and merged back in fixed shard order, so reports stay byte-identical for
/// any worker count and any steal schedule. Each shard
/// grows independently, so a hot shard doubling never rehashes the others.
#[derive(Debug, Clone)]
pub struct ShardedFpMap<V> {
    shards: Vec<FpMap<V>>,
    len: usize,
}

impl<V> ShardedFpMap<V> {
    /// An empty map with `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedFpMap {
            shards: (0..shards).map(|_| FpMap::new()).collect(),
            len: 0,
        }
    }

    /// Number of shards (fixed for the map's lifetime).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `fp` — [`shard_index`], the same partition
    /// function the search engine uses to split frontiers.
    #[inline]
    pub fn shard_of(&self, fp: u64) -> usize {
        shard_index(fp, self.shards.len())
    }

    /// Total entries across all shards.
    ///
    /// After direct mutation through [`Self::shards_mut`] the cached total
    /// is stale until [`Self::refresh_len`] runs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `fp` present?
    pub fn contains(&self, fp: u64) -> bool {
        self.shards[self.shard_of(fp)].contains(fp)
    }

    /// The value stored for `fp`, if any.
    pub fn get(&self, fp: u64) -> Option<&V> {
        self.shards[self.shard_of(fp)].get(fp)
    }

    /// Sequential insert with a *global* cap across all shards. Same
    /// semantics as [`FpMap::try_insert_with`], with the dedup check taking
    /// precedence over the cap, in a single probe (this is the hot path of
    /// every single-worker search).
    pub fn try_insert_with(&mut self, fp: u64, cap: Cap, make: impl FnOnce() -> V) -> TryInsert {
        // One key fold serves both the shard routing and the probe.
        let key = key_of(fp);
        let n = self.shards.len();
        let si = if n.is_power_of_two() {
            (key as usize) & (n - 1)
        } else {
            (key % n as u64) as usize
        };
        let shard = &mut self.shards[si];
        let mut i = shard.slot(key);
        // Dedup before cap, mirroring the flat table: a present fingerprint
        // is never reported Full.
        if shard.keys[i] == key {
            return TryInsert::Present;
        }
        if !cap.admits(self.len) {
            return TryInsert::Full;
        }
        if (shard.len + 1) * 2 > shard.keys.len() {
            shard.grow();
            i = shard.slot(key);
        }
        shard.keys[i] = key;
        shard.vals[i] = Some(make());
        shard.len += 1;
        self.len += 1;
        TryInsert::Inserted
    }

    /// Read-only view of the shard array, in shard order. The checkpoint
    /// layer serializes each shard's [`FpMap::iter_ordered`] page from
    /// this; restoring inserts straight back into [`Self::shards_mut`]
    /// (stored keys are already folded, and the fold is idempotent).
    pub fn shards(&self) -> &[FpMap<V>] {
        &self.shards
    }

    /// Exclusive access to the shard array, for the worker pool: each shard
    /// is claimed by exactly one worker per pass (whole shards off the
    /// atomic claim counter), so the borrows are disjoint by construction.
    /// Call [`Self::refresh_len`] afterwards.
    pub fn shards_mut(&mut self) -> &mut [FpMap<V>] {
        &mut self.shards
    }

    /// Recompute the cached total after direct shard mutation.
    pub fn refresh_len(&mut self) {
        self.len = self.shards.iter().map(FpMap::len).sum();
    }

    /// Shallow byte footprint: the sum of every shard's
    /// [`FpMap::approx_bytes`]. Worker-count-invariant because shard
    /// growth is driven by the (schedule-independent) entry sets.
    pub fn approx_bytes(&self) -> usize {
        self.shards.iter().map(FpMap::approx_bytes).sum()
    }

    /// Entries in ascending key order, aggregated across shards by a
    /// `shards`-way merge of the per-shard ordered iterators. Because every
    /// shard's order and the flat [`FpMap`]'s order are both "ascending
    /// key", the aggregate sequence equals what a single `FpMap` holding
    /// the same keys would produce (`tests/determinism.rs` sweeps this).
    pub fn iter_ordered(&self) -> impl Iterator<Item = (u64, &V)> {
        let mut cursors: Vec<std::iter::Peekable<_>> = self
            .shards
            .iter()
            .map(|s| s.iter_ordered().peekable())
            .collect();
        std::iter::from_fn(move || {
            let (best, _) = cursors
                .iter_mut()
                .enumerate()
                .filter_map(|(i, c)| c.peek().map(|&(k, _)| (i, k)))
                .min_by_key(|&(_, k)| k)?;
            cursors[best].next()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_and_dedup() {
        let mut m: FpMap<usize> = FpMap::new();
        for fp in 1..=500u64 {
            assert_eq!(
                m.try_insert_with(fp * 0x9E37_79B9, Cap::Unbounded, || fp as usize),
                TryInsert::Inserted
            );
        }
        assert_eq!(m.len(), 500);
        for fp in 1..=500u64 {
            assert!(m.contains(fp * 0x9E37_79B9));
            assert_eq!(m.get(fp * 0x9E37_79B9), Some(&(fp as usize)));
            assert_eq!(
                m.try_insert_with(fp * 0x9E37_79B9, Cap::Unbounded, || 0),
                TryInsert::Present
            );
        }
        assert!(!m.contains(12345));
        assert_eq!(m.get(12345), None);
    }

    #[test]
    fn cap_refuses_new_entries_but_admits_lookups() {
        let mut m: FpMap<()> = FpMap::new();
        assert_eq!(m.try_insert_with(7, Cap::At(1), || ()), TryInsert::Inserted);
        assert_eq!(m.try_insert_with(8, Cap::At(1), || ()), TryInsert::Full);
        assert_eq!(m.try_insert_with(7, Cap::At(1), || ()), TryInsert::Present);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn zero_fingerprint_folds_onto_key_one() {
        let mut m: FpMap<u8> = FpMap::new();
        assert_eq!(m.try_insert_with(0, Cap::At(10), || 1), TryInsert::Inserted);
        assert_eq!(m.try_insert_with(1, Cap::At(10), || 2), TryInsert::Present);
        assert!(m.contains(0) && m.contains(1));
    }

    #[test]
    fn present_and_full_never_grow_the_table() {
        let mut m: FpMap<u64> = FpMap::new();
        // Fill to the 50%-load growth threshold exactly: with 64 slots the
        // next *actual* insert (the 33rd) is the one that must double.
        for fp in 1..=32u64 {
            assert_eq!(m.try_insert_with(fp, Cap::Unbounded, || fp), TryInsert::Inserted);
        }
        assert_eq!(m.capacity(), 64);

        // Regression: these three non-inserting operations used to grow the
        // table before probing, doubling capacity on every duplicate or
        // over-cap hit at the threshold.
        assert_eq!(m.try_insert_with(7, Cap::Unbounded, || 0), TryInsert::Present);
        assert_eq!(m.capacity(), 64, "Present must not grow");
        assert_eq!(m.try_insert_with(1000, Cap::At(32), || 0), TryInsert::Full);
        assert_eq!(m.capacity(), 64, "Full must not grow");
        assert_eq!(*m.get_or_insert_with(7, || 0), 7);
        assert_eq!(m.capacity(), 64, "get_or_insert on a present key must not grow");

        // The insert that actually lands is the one that doubles.
        assert_eq!(m.try_insert_with(33, Cap::Unbounded, || 33), TryInsert::Inserted);
        assert_eq!(m.capacity(), 128);
        assert_eq!(m.len(), 33);
        for fp in 1..=33u64 {
            assert_eq!(m.get(fp), Some(&fp), "entry {fp} survived the resize");
        }
    }

    #[test]
    fn full_at_threshold_stays_probeable() {
        // A capped map parked at the growth threshold keeps serving
        // lookups and Present/Full verdicts without ever resizing.
        let mut m: FpMap<()> = FpMap::new();
        for fp in 1..=32u64 {
            assert_eq!(m.try_insert_with(fp, Cap::At(32), || ()), TryInsert::Inserted);
        }
        for round in 0..3 {
            for fp in 1..=32u64 {
                assert_eq!(m.try_insert_with(fp, Cap::At(32), || ()), TryInsert::Present);
            }
            assert_eq!(m.try_insert_with(100 + round, Cap::At(32), || ()), TryInsert::Full);
            assert_eq!(m.capacity(), 64);
        }
        assert_eq!(m.len(), 32);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m: FpMap<u64> = FpMap::new();
        for fp in 0..10_000u64 {
            m.get_or_insert_with(fp.wrapping_mul(0x2545_F491_4F6C_DD1D), || fp);
        }
        for fp in 0..10_000u64 {
            let k = fp.wrapping_mul(0x2545_F491_4F6C_DD1D);
            assert_eq!(m.get(k), Some(&fp), "lost {fp}");
        }
    }

    #[test]
    fn cap_admits_boundary() {
        assert!(Cap::Unbounded.admits(usize::MAX - 1));
        assert!(Cap::At(3).admits(2));
        assert!(!Cap::At(3).admits(3));
        assert!(!Cap::At(0).admits(0));
    }

    #[test]
    fn sharded_routes_by_modulus_and_counts_globally() {
        let mut m: ShardedFpMap<u64> = ShardedFpMap::new(8);
        for fp in 1..=100u64 {
            let k = fp.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert_eq!(m.try_insert_with(k, Cap::Unbounded, || fp), TryInsert::Inserted);
            assert_eq!(m.try_insert_with(k, Cap::Unbounded, || 0), TryInsert::Present);
        }
        assert_eq!(m.len(), 100);
        for fp in 1..=100u64 {
            let k = fp.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert!(m.contains(k));
            assert_eq!(m.get(k), Some(&fp));
            assert_eq!(m.shard_of(k), (k % 8) as usize);
        }
        // Entries really live in their owning shard and nowhere else.
        for fp in 1..=100u64 {
            let k = fp.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let own = m.shard_of(k);
            for (i, shard) in m.shards_mut().iter().enumerate() {
                assert_eq!(shard.contains(k), i == own, "fp {k:#x} shard {i}");
            }
        }
    }

    #[test]
    fn sharded_global_cap_spans_shards() {
        let mut m: ShardedFpMap<()> = ShardedFpMap::new(4);
        for fp in 1..=5u64 {
            assert_eq!(m.try_insert_with(fp, Cap::At(5), || ()), TryInsert::Inserted);
        }
        // The 6th insert refuses even though its own shard holds only one
        // or two entries: the cap is global.
        assert_eq!(m.try_insert_with(6, Cap::At(5), || ()), TryInsert::Full);
        // Dedup still beats the cap.
        assert_eq!(m.try_insert_with(3, Cap::At(5), || ()), TryInsert::Present);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn shards_mut_plus_refresh_len_round_trips() {
        let mut m: ShardedFpMap<u8> = ShardedFpMap::new(4);
        let n = m.shard_count() as u64;
        for fp in 1..=10u64 {
            let shard = (fp % n) as usize;
            m.shards_mut()[shard].try_insert_with(fp, Cap::Unbounded, || 0);
        }
        m.refresh_len();
        assert_eq!(m.len(), 10);
        for fp in 1..=10u64 {
            assert!(m.contains(fp));
        }
    }

    #[test]
    fn sharded_iteration_matches_flat_iteration() {
        // The deterministic aggregate order: merging per-shard ordered
        // iterators equals the flat table's ordered iteration on the same
        // key set (the property the det_prop! sweep in tests/determinism.rs
        // randomizes).
        let keys: Vec<u64> = (1..=64u64)
            .map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D))
            .collect();
        let mut flat: FpMap<u64> = FpMap::new();
        let mut sharded: ShardedFpMap<u64> = ShardedFpMap::new(7);
        for &k in &keys {
            flat.try_insert_with(k, Cap::Unbounded, || k);
            sharded.try_insert_with(k, Cap::Unbounded, || k);
        }
        let a: Vec<(u64, u64)> = flat.iter_ordered().map(|(k, &v)| (k, v)).collect();
        let b: Vec<(u64, u64)> = sharded.iter_ordered().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "ascending, duplicate-free");
    }

    #[test]
    fn approx_bytes_tracks_growth_and_clear_releases_it() {
        let slot = 8 + std::mem::size_of::<Option<u64>>();
        let mut m: FpMap<u64> = FpMap::new();
        assert_eq!(m.approx_bytes(), 64 * slot);
        // Push past the 50% load threshold a few times; the footprint is a
        // pure function of the entry count, not of insertion history.
        for fp in 1..=200u64 {
            m.try_insert_with(fp, Cap::Unbounded, || fp);
        }
        assert_eq!(m.approx_bytes(), 512 * slot);
        m.clear();
        assert_eq!(m.len(), 0);
        assert_eq!(m.approx_bytes(), 64 * slot);
        assert!(!m.contains(7));
        // Cleared tables accept fresh inserts from a clean slate.
        m.try_insert_with(7, Cap::Unbounded, || 7);
        assert_eq!(m.get(7), Some(&7));

        let mut sharded: ShardedFpMap<u64> = ShardedFpMap::new(4);
        assert_eq!(sharded.approx_bytes(), 4 * 64 * slot);
        for fp in 1..=500u64 {
            sharded.try_insert_with(fp, Cap::Unbounded, || fp);
        }
        let grown: usize = sharded.shards().iter().map(FpMap::approx_bytes).sum();
        assert_eq!(sharded.approx_bytes(), grown);
        assert!(sharded.approx_bytes() > 4 * 64 * slot);
    }
}

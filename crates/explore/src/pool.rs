//! Deterministic fork-join worker pool with whole-shard work stealing.
//!
//! The one place in the workspace allowed to touch OS threads. The contract
//! that keeps it deterministic is structural, not synchronization-based:
//!
//! * work arrives as an ordered list of indexed items — the search engine's
//!   frontier **partitions** and visited-set **shards**, both keyed by the
//!   same fixed `fingerprint % partitions` function (a constant independent
//!   of the worker count);
//! * idle workers claim the next *whole* item from a shared atomic claim
//!   counter (`fetch_add` over the item index). A shard's item stream is
//!   never split: whichever worker claims item `k` runs all of `f(k, item)`
//!   to completion, so per-item output is the same pure function of
//!   `(k, item)` no matter who computed it. The race decides only *who*
//!   computes each item, which is unobservable in the output;
//! * results are returned **in item order** (merged by item index into
//!   fixed slots), so the caller's merge observes a sequence that depends
//!   only on the input, never on thread scheduling.
//!
//! Consequently every mapper here is extensionally identical for any worker
//! count — the determinism test in `tests/determinism.rs` pins byte-equal
//! search reports for 1, 2 and 8 workers. Threads are *scoped* (joined
//! before return) and share only the read-only closure plus the claim
//! counter, so no state leaks across calls. Panics in workers propagate to
//! the caller.
//!
//! ## Steal accounting
//!
//! The pool counts claim-protocol activity in two atomic counters drained
//! via [`WorkerPool::take_steals`]. Which *worker* performs a given steal is
//! scheduling-dependent and deliberately not recorded; the *number* of
//! steals is not: a parallel pass over `n` items with `W` workers spawns
//! `min(W, n)` threads whose first claims are their own, so exactly
//! `n - min(W, n)` claims are steals — a pure function of `(n, W)`. The
//! search engine folds these into `SearchStats::{steals, stolen_shards}`,
//! which therefore stay byte-identical across runs at the same worker
//! count (and are zeroed alongside `workers` when tests compare across
//! worker counts).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-size fork-join pool. `workers == 1` runs inline with no threads.
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
    /// Parallel passes in which at least one item was stolen.
    steal_passes: AtomicU64,
    /// Total items claimed beyond each worker's first (i.e. stolen shards).
    stolen_shards: AtomicU64,
}

impl WorkerPool {
    /// A pool with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
            steal_passes: AtomicU64::new(0),
            stolen_shards: AtomicU64::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drain the steal counters accumulated since the last call: `(passes
    /// with stealing, shards claimed as steals)`. Both are deterministic
    /// projections of the claim protocol (see the module docs); the inline
    /// single-worker path never steals, so both stay 0 at `workers == 1`.
    pub fn take_steals(&self) -> (u64, u64) {
        (
            self.steal_passes.swap(0, Ordering::Relaxed),
            self.stolen_shards.swap(0, Ordering::Relaxed),
        )
    }

    /// Apply `f` to every item of every partition, returning outputs grouped
    /// by partition, in partition order and in-partition input order.
    ///
    /// The output is a pure function of `(parts, f)` — the worker count only
    /// affects wall-clock time.
    pub fn map_partitions<I, O, F>(&self, parts: &[Vec<I>], f: F) -> Vec<Vec<O>>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        self.map_each_partition(parts, |p| p.iter().map(&f).collect())
    }

    /// Apply `f` to each whole partition (one call per partition, so hot
    /// callers can accumulate into a single buffer instead of allocating per
    /// item), returning outputs in partition order.
    ///
    /// Same determinism contract as [`WorkerPool::map_partitions`]: the
    /// output is a pure function of `(parts, f)`.
    pub fn map_each_partition<I, O, F>(&self, parts: &[Vec<I>], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&[I]) -> O + Sync,
    {
        let items: Vec<&[I]> = parts.iter().map(Vec::as_slice).collect();
        self.map_indexed(items, |_, p| f(p))
    }

    /// Consume an ordered list of items, applying `f(index, item)` on
    /// whichever worker claims the index first, and return outputs in index
    /// order.
    ///
    /// This is the pool's core (the other mappers are wrappers) and the
    /// primitive behind worker-owned visited-set shards: passing
    /// `&mut`-borrows of the shards as items hands each claiming worker
    /// exclusive access to exactly the shards it claimed — the borrows are
    /// disjoint because each item is taken from its slot exactly once. The
    /// output is a pure function of `(items, f)`; the worker count only
    /// affects wall-clock time.
    pub fn map_indexed<T, O, F>(&self, items: Vec<T>, f: F) -> Vec<O>
    where
        T: Send,
        O: Send,
        F: Fn(usize, T) -> O + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.into_iter().enumerate().map(|(k, t)| f(k, t)).collect();
        }
        let n = items.len();
        // Steal accounting (deterministic — see module docs): the first
        // claim of each spawned worker is its own; every further claim is a
        // steal, so a pass over n items steals exactly n - spawned of them.
        let spawned = self.workers.min(n);
        let stolen = (n - spawned) as u64;
        if stolen > 0 {
            self.steal_passes.fetch_add(1, Ordering::Relaxed);
            self.stolen_shards.fetch_add(stolen, Ordering::Relaxed);
        }
        // Each item sits in a one-shot slot; a worker that wins index k via
        // the claim counter takes the item out and is its only toucher.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let next = AtomicUsize::new(0);
        let mut out: Vec<O> = Vec::with_capacity(n);
        // Scoped threads: joined before return, sharing only `f`, the slots
        // and the claim counter. Results are placed by item index, so
        // scheduling order cannot influence the output.
        // LINT-ALLOW: det-ambient -- deterministic fork-join pool: atomic whole-shard claim counter, ordered merge (docs/EXPLORE.md)
        std::thread::scope(|scope| {
            let f = &f;
            let slots = &slots;
            let next = &next;
            let handles: Vec<_> = (0..spawned)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done: Vec<(usize, O)> = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= n {
                                break;
                            }
                            let t = slots[k]
                                .lock()
                                .expect("claim slot poisoned")
                                .take()
                                .expect("item claimed twice");
                            done.push((k, f(k, t)));
                        }
                        done
                    })
                })
                .collect();
            let mut merged: Vec<Option<O>> = (0..n).map(|_| None).collect();
            for h in handles {
                for (k, v) in h.join().expect("explore worker panicked") {
                    merged[k] = Some(v);
                }
            }
            out.extend(merged.into_iter().map(|s| s.expect("item covered")));
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_parts(parts: &[Vec<u64>], workers: usize) -> Vec<Vec<u64>> {
        WorkerPool::new(workers).map_partitions(parts, |x| x * x)
    }

    #[test]
    fn output_is_worker_count_invariant() {
        let parts: Vec<Vec<u64>> = (0..13).map(|k| (0..k).collect()).collect();
        let one = square_parts(&parts, 1);
        for w in [2, 3, 8, 64] {
            assert_eq!(square_parts(&parts, w), one);
        }
    }

    #[test]
    fn empty_and_single_partition_edge_cases() {
        assert_eq!(square_parts(&[], 4), Vec::<Vec<u64>>::new());
        assert_eq!(square_parts(&[vec![3]], 4), vec![vec![9]]);
        assert_eq!(
            square_parts(&[vec![], vec![2], vec![]], 2),
            vec![vec![], vec![4], vec![]]
        );
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn map_indexed_moves_items_and_keeps_order() {
        // Owned items (here Strings) are consumed by whichever worker claims
        // them and outputs come back in index order for any worker count.
        let mk = || (0..17).map(|i| format!("item-{i}")).collect::<Vec<_>>();
        let one = WorkerPool::new(1).map_indexed(mk(), |k, s| format!("{k}:{s}"));
        for w in [2, 3, 8] {
            let got = WorkerPool::new(w).map_indexed(mk(), |k, s| format!("{k}:{s}"));
            assert_eq!(got, one, "workers={w}");
        }
        assert_eq!(one[0], "0:item-0");
        assert_eq!(one[16], "16:item-16");
    }

    #[test]
    fn map_indexed_grants_exclusive_mutable_access() {
        // &mut borrows as items: each claiming worker mutates only the slots
        // it claimed; the merged result is schedule-independent.
        let mut cells: Vec<u64> = vec![0; 23];
        {
            let items: Vec<&mut u64> = cells.iter_mut().collect();
            WorkerPool::new(4).map_indexed(items, |k, cell| {
                *cell = (k as u64) * 10;
            });
        }
        assert!(cells.iter().enumerate().all(|(k, &v)| v == (k as u64) * 10));
    }

    #[test]
    fn steal_counters_are_a_pure_function_of_items_and_workers() {
        // 64 items, 2 workers: the pass spawns 2 threads whose first claims
        // are their own, so exactly 62 claims are steals — regardless of
        // which thread performed them.
        let pool = WorkerPool::new(2);
        let _ = pool.map_indexed((0..64u64).collect(), |_, x| x + 1);
        assert_eq!(pool.take_steals(), (1, 62));
        // Drained: a second take reads zero.
        assert_eq!(pool.take_steals(), (0, 0));
        // Counters accumulate across passes until drained.
        let _ = pool.map_indexed((0..64u64).collect(), |_, x| x);
        let _ = pool.map_indexed((0..5u64).collect(), |_, x| x);
        assert_eq!(pool.take_steals(), (2, 62 + 3));
    }

    #[test]
    fn inline_paths_never_steal() {
        // One worker (inline) and degenerate item counts record no steals.
        let one = WorkerPool::new(1);
        let _ = one.map_indexed((0..64u64).collect(), |_, x| x);
        assert_eq!(one.take_steals(), (0, 0));
        let many = WorkerPool::new(8);
        let _ = many.map_indexed(vec![7u64], |_, x| x);
        let _ = many.map_indexed(Vec::<u64>::new(), |_, x| x);
        // n <= 1 runs inline; n == 8 spawns 8 workers, zero steals.
        let _ = many.map_indexed((0..8u64).collect(), |_, x| x);
        assert_eq!(many.take_steals(), (0, 0));
    }
}

//! Deterministic fork-join worker pool.
//!
//! The one place in the workspace allowed to touch OS threads. The contract
//! that keeps it deterministic is structural, not synchronization-based:
//!
//! * work arrives as an ordered list of indexed items — the search engine's
//!   frontier **partitions** and visited-set **shards**, both keyed by the
//!   same fixed `fingerprint % partitions` function (a constant independent
//!   of the worker count);
//! * worker `w` processes items `w, w + W, w + 2W, ...` — a pure function
//!   of the item index, never a work-stealing race. Because visited-set
//!   shard `k` and frontier partition `k` share an index, the worker that
//!   expands partition `k` is also the exclusive owner of shard `k`: dedup
//!   and insert run worker-locally with no locks;
//! * results are returned **in item order**, so the caller's merge observes
//!   a sequence that depends only on the input, never on thread scheduling.
//!
//! Consequently every mapper here is extensionally identical for any worker
//! count — the determinism test in `tests/determinism.rs` pins byte-equal
//! search reports for 1, 2 and 8 workers. Threads are *scoped* (joined
//! before return) and share only the read-only closure, so no state leaks
//! across calls. Panics in workers propagate to the caller.

/// A fixed-size fork-join pool. `workers == 1` runs inline with no threads.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Apply `f` to every item of every partition, returning outputs grouped
    /// by partition, in partition order and in-partition input order.
    ///
    /// The output is a pure function of `(parts, f)` — the worker count only
    /// affects wall-clock time.
    pub fn map_partitions<I, O, F>(&self, parts: &[Vec<I>], f: F) -> Vec<Vec<O>>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        self.map_each_partition(parts, |p| p.iter().map(&f).collect())
    }

    /// Apply `f` to each whole partition (one call per partition, so hot
    /// callers can accumulate into a single buffer instead of allocating per
    /// item), returning outputs in partition order.
    ///
    /// Same determinism contract as [`WorkerPool::map_partitions`]: the
    /// output is a pure function of `(parts, f)`.
    pub fn map_each_partition<I, O, F>(&self, parts: &[Vec<I>], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&[I]) -> O + Sync,
    {
        let items: Vec<&[I]> = parts.iter().map(Vec::as_slice).collect();
        self.map_indexed(items, |_, p| f(p))
    }

    /// Consume an ordered list of items, applying `f(index, item)` with
    /// worker `index % workers`, and return outputs in index order.
    ///
    /// This is the pool's core (the other mappers are wrappers) and the
    /// primitive behind worker-owned visited-set shards: passing
    /// `&mut`-borrows of the shards as items hands each worker exclusive
    /// access to exactly the shards whose index it owns — the borrows are
    /// disjoint because each item is moved to exactly one worker. The
    /// output is a pure function of `(items, f)`; the worker count only
    /// affects wall-clock time.
    pub fn map_indexed<T, O, F>(&self, items: Vec<T>, f: F) -> Vec<O>
    where
        T: Send,
        O: Send,
        F: Fn(usize, T) -> O + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.into_iter().enumerate().map(|(k, t)| f(k, t)).collect();
        }
        let n = items.len();
        // Deal items to their owning worker: worker w gets k ≡ w (mod W),
        // in ascending k order.
        let mut dealt: Vec<Vec<(usize, T)>> = (0..self.workers).map(|_| Vec::new()).collect();
        for (k, t) in items.into_iter().enumerate() {
            dealt[k % self.workers].push((k, t));
        }
        let mut out: Vec<O> = Vec::with_capacity(n);
        // Scoped threads: joined before return, sharing only `f`. Results
        // are placed by item index, so scheduling order cannot influence
        // the output.
        // LINT-ALLOW: det-ambient -- deterministic fork-join pool: fixed index->worker map, ordered merge (docs/EXPLORE.md)
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = dealt
                .into_iter()
                .map(|mine| {
                    scope.spawn(move || {
                        mine.into_iter()
                            .map(|(k, t)| (k, f(k, t)))
                            .collect::<Vec<(usize, O)>>()
                    })
                })
                .collect();
            let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
            for h in handles {
                for (k, v) in h.join().expect("explore worker panicked") {
                    slots[k] = Some(v);
                }
            }
            out.extend(slots.into_iter().map(|s| s.expect("item covered")));
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_parts(parts: &[Vec<u64>], workers: usize) -> Vec<Vec<u64>> {
        WorkerPool::new(workers).map_partitions(parts, |x| x * x)
    }

    #[test]
    fn output_is_worker_count_invariant() {
        let parts: Vec<Vec<u64>> = (0..13).map(|k| (0..k).collect()).collect();
        let one = square_parts(&parts, 1);
        for w in [2, 3, 8, 64] {
            assert_eq!(square_parts(&parts, w), one);
        }
    }

    #[test]
    fn empty_and_single_partition_edge_cases() {
        assert_eq!(square_parts(&[], 4), Vec::<Vec<u64>>::new());
        assert_eq!(square_parts(&[vec![3]], 4), vec![vec![9]]);
        assert_eq!(
            square_parts(&[vec![], vec![2], vec![]], 2),
            vec![vec![], vec![4], vec![]]
        );
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn map_indexed_moves_items_and_keeps_order() {
        // Owned items (here Strings) are consumed by their owning worker and
        // outputs come back in index order for any worker count.
        let mk = || (0..17).map(|i| format!("item-{i}")).collect::<Vec<_>>();
        let one = WorkerPool::new(1).map_indexed(mk(), |k, s| format!("{k}:{s}"));
        for w in [2, 3, 8] {
            let got = WorkerPool::new(w).map_indexed(mk(), |k, s| format!("{k}:{s}"));
            assert_eq!(got, one, "workers={w}");
        }
        assert_eq!(one[0], "0:item-0");
        assert_eq!(one[16], "16:item-16");
    }

    #[test]
    fn map_indexed_grants_exclusive_mutable_access() {
        // &mut borrows as items: each worker mutates only the slots it
        // owns; the merged result is schedule-independent.
        let mut cells: Vec<u64> = vec![0; 23];
        {
            let items: Vec<&mut u64> = cells.iter_mut().collect();
            WorkerPool::new(4).map_indexed(items, |k, cell| {
                *cell = (k as u64) * 10;
            });
        }
        assert!(cells.iter().enumerate().all(|(k, &v)| v == (k as u64) * 10));
    }
}

//! Deterministic fork-join worker pool.
//!
//! The one place in the workspace allowed to touch OS threads. The contract
//! that keeps it deterministic is structural, not synchronization-based:
//!
//! * work arrives as an ordered list of **partitions** (the search engine
//!   partitions each BFS level by state fingerprint, with a partition count
//!   that is *fixed* — independent of the worker count);
//! * worker `w` processes partitions `w, w + W, w + 2W, ...` — a pure
//!   function of the partition index, never a work-stealing race;
//! * each partition's results are returned **in partition order**, so the
//!   caller's merge observes a sequence that depends only on the input,
//!   never on thread scheduling.
//!
//! Consequently `map_partitions` is extensionally identical for any worker
//! count — the determinism test in `tests/determinism.rs` pins byte-equal
//! search reports for 1, 2 and 8 workers. Threads are *scoped* (joined
//! before return) and share only the read-only closure, so no state leaks
//! across calls. Panics in workers propagate to the caller.

/// A fixed-size fork-join pool. `workers == 1` runs inline with no threads.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Apply `f` to every item of every partition, returning outputs grouped
    /// by partition, in partition order and in-partition input order.
    ///
    /// The output is a pure function of `(parts, f)` — the worker count only
    /// affects wall-clock time.
    pub fn map_partitions<I, O, F>(&self, parts: &[Vec<I>], f: F) -> Vec<Vec<O>>
    where
        I: Sync,
        O: Send,
        F: Fn(&I) -> O + Sync,
    {
        self.map_each_partition(parts, |p| p.iter().map(&f).collect())
    }

    /// Apply `f` to each whole partition (one call per partition, so hot
    /// callers can accumulate into a single buffer instead of allocating per
    /// item), returning outputs in partition order.
    ///
    /// Same determinism contract as [`WorkerPool::map_partitions`]: the
    /// output is a pure function of `(parts, f)`.
    pub fn map_each_partition<I, O, F>(&self, parts: &[Vec<I>], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&[I]) -> O + Sync,
    {
        if self.workers == 1 || parts.len() <= 1 {
            return parts.iter().map(|p| f(p)).collect();
        }
        let mut out: Vec<O> = Vec::with_capacity(parts.len());
        // Scoped threads: joined before return, borrowing `parts`/`f` only.
        // Results are placed by partition index, so scheduling order cannot
        // influence the output.
        // LINT-ALLOW: det-ambient -- deterministic fork-join pool: fixed partition->worker map, ordered merge (docs/EXPLORE.md)
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = (0..self.workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, O)> = Vec::new();
                        let mut k = w;
                        while k < parts.len() {
                            mine.push((k, f(&parts[k])));
                            k += self.workers;
                        }
                        mine
                    })
                })
                .collect();
            let mut slots: Vec<Option<O>> = (0..parts.len()).map(|_| None).collect();
            for h in handles {
                for (k, v) in h.join().expect("explore worker panicked") {
                    slots[k] = Some(v);
                }
            }
            out.extend(slots.into_iter().map(|s| s.expect("partition covered")));
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_parts(parts: &[Vec<u64>], workers: usize) -> Vec<Vec<u64>> {
        WorkerPool::new(workers).map_partitions(parts, |x| x * x)
    }

    #[test]
    fn output_is_worker_count_invariant() {
        let parts: Vec<Vec<u64>> = (0..13).map(|k| (0..k).collect()).collect();
        let one = square_parts(&parts, 1);
        for w in [2, 3, 8, 64] {
            assert_eq!(square_parts(&parts, w), one);
        }
    }

    #[test]
    fn empty_and_single_partition_edge_cases() {
        assert_eq!(square_parts(&[], 4), Vec::<Vec<u64>>::new());
        assert_eq!(square_parts(&[vec![3]], 4), vec![vec![9]]);
        assert_eq!(
            square_parts(&[vec![], vec![2], vec![]], 2),
            vec![vec![], vec![4], vec![]]
        );
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }
}

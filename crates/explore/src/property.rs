//! Temporal property checking over the exact reachable graph: safety as
//! reachability, liveness as deterministic SCC lasso detection.
//!
//! Lynch's survey states most impossibility results temporally: a safety
//! violation is a *bad reachable configuration*, while FLP non-termination
//! \[55\] is a fact about **infinite admissible executions** — no finite
//! prefix refutes termination; the witness is a *lasso*, a finite stem
//! reaching a cycle the adversary can repeat forever. This module makes
//! both kinds of claim first-class over [`ReachableGraph`]:
//!
//! * [`always`]`(p)` / [`never()`]`(p)` — safety. Reduces to reachability of
//!   a violating state; the witness is the shortest execution to it
//!   (graph indices are BFS discovery order, so index order *is* depth
//!   order).
//! * [`eventually`]`(p)` / [`leads_to`]`(p, q)` — liveness. A violation is
//!   an infinite run avoiding the goal, i.e. a reachable cycle inside the
//!   goal-avoiding region. The checker runs an **iterative Tarjan SCC
//!   decomposition restricted to that region, visiting vertices in fixed
//!   graph-index order**, so the decomposition — and hence the verdict,
//!   the chosen lasso head, and every witness byte — is a pure function of
//!   the graph, never of worker count or timing.
//!
//! [`Checker`] adds the survey's admissibility discipline: an
//! `admissible` state filter restricts which states may repeat forever
//! (FLP: no message to a live process may stay pending around the loop),
//! and `fairness` classes require the cycle to contain an action of every
//! class (FLP: every live process keeps stepping). `consensus::flp`'s
//! non-termination engine is one instantiation of exactly this pair.
//!
//! # Example: one safety check and one liveness check
//!
//! ```
//! use impossible_core::system::System;
//! use impossible_explore::{Encode, FpHasher, Search};
//! use impossible_explore::property::{always, eventually, Counterexample};
//!
//! /// A wrapping counter: 0 → 1 → 2 → 0 → … (a 3-cycle, never terminates).
//! struct Wrap;
//! #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
//! struct W(u64);
//! impl Encode for W {
//!     fn encode(&self, h: &mut FpHasher) { self.0.encode(h); }
//! }
//! impl System for Wrap {
//!     type State = W;
//!     type Action = u64;
//!     fn initial_states(&self) -> Vec<W> { vec![W(0)] }
//!     fn enabled(&self, _: &W) -> Vec<u64> { vec![0] }
//!     fn step(&self, s: &W, _: &u64) -> W { W((s.0 + 1) % 3) }
//! }
//!
//! // Safety: the counter stays in range — no bad state is reachable.
//! let safe = Search::new(&Wrap).check_property(&always("in-range", |s: &W| s.0 <= 2));
//! assert!(safe.holds);
//!
//! // Liveness: "eventually the counter hits 3" fails — the wrap cycle is
//! // an infinite run avoiding 3. The counterexample is a lasso.
//! let live = Search::new(&Wrap).check_property(&eventually("reaches-3", |s: &W| s.0 == 3));
//! assert!(!live.holds);
//! match live.counterexample {
//!     Some(Counterexample::Lasso(l)) => {
//!         assert_eq!(l.stem.last(), &W(0)); // loop head
//!         assert_eq!(l.cycle.len(), 3);     // 0 → 1 → 2 → 0
//!     }
//!     other => panic!("expected a lasso, got {other:?}"),
//! }
//! ```
//!
//! Verdicts are advisory when the graph was truncated by `max_states`
//! ([`PropertyReport::truncated`]): "holds" then means "no counterexample
//! within the explored prefix". See `docs/PROPERTIES.md` for the DSL
//! semantics, the witness JSON format, and the determinism contract.

use crate::fingerprint::Encode;
use crate::graph::ReachableGraph;
use crate::search::Search;
use impossible_core::exec::Execution;
use impossible_core::system::System;
use impossible_obs::{trace_event, NoopTracer, Tracer};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Debug;

type Pred<'p, S> = Box<dyn Fn(&S) -> bool + 'p>;

enum PropKind<'p, S> {
    Always(Pred<'p, S>),
    Never(Pred<'p, S>),
    Eventually(Pred<'p, S>),
    LeadsTo(Pred<'p, S>, Pred<'p, S>),
}

/// A temporal property over states, built by [`always`], [`never()`],
/// [`eventually`] or [`leads_to`].
pub struct Property<'p, S> {
    name: String,
    kind: PropKind<'p, S>,
}

impl<'p, S> Property<'p, S> {
    /// The name given at construction (stamped into reports and traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The connective: `"always"`, `"never"`, `"eventually"` or `"leads-to"`.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            PropKind::Always(_) => "always",
            PropKind::Never(_) => "never",
            PropKind::Eventually(_) => "eventually",
            PropKind::LeadsTo(_, _) => "leads-to",
        }
    }
}

/// `□p` — `p` holds in every reachable state (safety).
pub fn always<'p, S>(name: &str, p: impl Fn(&S) -> bool + 'p) -> Property<'p, S> {
    Property {
        name: name.to_string(),
        kind: PropKind::Always(Box::new(p)),
    }
}

/// `□¬p` — no reachable state satisfies `p` (safety).
pub fn never<'p, S>(name: &str, p: impl Fn(&S) -> bool + 'p) -> Property<'p, S> {
    Property {
        name: name.to_string(),
        kind: PropKind::Never(Box::new(p)),
    }
}

/// `◇p` — every (fair, admissible) run satisfies `p` at some point
/// (liveness). A violation is a lasso that never enters `p`.
pub fn eventually<'p, S>(name: &str, p: impl Fn(&S) -> bool + 'p) -> Property<'p, S> {
    Property {
        name: name.to_string(),
        kind: PropKind::Eventually(Box::new(p)),
    }
}

/// `□(p → ◇q)` — whenever `p` holds, `q` follows (liveness). A violation
/// is a run reaching a `p`-state from which a lasso avoids `q` forever.
pub fn leads_to<'p, S>(
    name: &str,
    p: impl Fn(&S) -> bool + 'p,
    q: impl Fn(&S) -> bool + 'p,
) -> Property<'p, S> {
    Property {
        name: name.to_string(),
        kind: PropKind::LeadsTo(Box::new(p), Box::new(q)),
    }
}

/// A liveness counterexample: a finite stem from an initial state to a
/// loop head, plus a cycle the adversary can repeat forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lasso<S, A> {
    /// Initial state to the loop head (the stem's last state).
    pub stem: Execution<S, A>,
    /// Steps around the cycle; the last state equals the loop head. Empty
    /// means the head is terminal and the run stutters there forever.
    pub cycle: Vec<(A, S)>,
    /// For `leads_to(p, q)`: index into `stem.states()` of the triggering
    /// `p`-state that `q` never answers. `None` for `eventually`.
    pub pivot: Option<usize>,
}

/// Why a property failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Counterexample<S, A> {
    /// Safety: the shortest execution reaching a violating state.
    BadState(Execution<S, A>),
    /// Liveness: a stem plus a repeatable cycle avoiding the goal.
    Lasso(Lasso<S, A>),
}

/// The outcome of one property check, with a deterministic JSON rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyReport<S, A> {
    /// The property's name.
    pub name: String,
    /// The connective checked (`"always"`, …, `"leads-to"`).
    pub kind: &'static str,
    /// Verdict. Advisory if [`truncated`](PropertyReport::truncated).
    pub holds: bool,
    /// States in the checked graph.
    pub states: usize,
    /// Edges in the checked graph.
    pub edges: usize,
    /// Safety: states violating the predicate. Liveness: cycle-eligible
    /// states (goal-avoiding ∧ admissible) the SCC pass ran over.
    pub region: usize,
    /// SCCs of the cycle-eligible region (0 for safety checks).
    pub sccs: usize,
    /// Region SCCs that can sustain a violating run: cycle-capable and
    /// covering every fairness class (0 for safety checks).
    pub candidate_sccs: usize,
    /// The graph hit `max_states`; absence of a counterexample is then
    /// only "none within bounds".
    pub truncated: bool,
    /// Present exactly when `holds` is false.
    pub counterexample: Option<Counterexample<S, A>>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_debug_list<T: Debug>(out: &mut String, items: impl Iterator<Item = T>) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, &format!("{item:?}"));
    }
    out.push(']');
}

impl<S: Clone + Debug, A: Clone + Debug> PropertyReport<S, A> {
    /// Deterministic single-line JSON: fixed key order, no whitespace
    /// variation; states and actions rendered through `Debug` and escaped.
    /// Equal reports encode to equal bytes (the worker-invariance tests
    /// compare exactly these strings).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        push_json_str(&mut out, &self.name);
        out.push_str(&format!(
            ",\"kind\":\"{}\",\"holds\":{},\"states\":{},\"edges\":{},\"region\":{},\"sccs\":{},\"candidate_sccs\":{},\"truncated\":{},\"counterexample\":",
            self.kind, self.holds, self.states, self.edges, self.region, self.sccs,
            self.candidate_sccs, self.truncated,
        ));
        match &self.counterexample {
            None => out.push_str("null"),
            Some(Counterexample::BadState(e)) => {
                out.push_str("{\"type\":\"bad-state\",\"states\":");
                push_debug_list(&mut out, e.states().iter());
                out.push_str(",\"actions\":");
                push_debug_list(&mut out, e.actions().iter());
                out.push('}');
            }
            Some(Counterexample::Lasso(l)) => {
                out.push_str("{\"type\":\"lasso\",\"pivot\":");
                match l.pivot {
                    None => out.push_str("null"),
                    Some(k) => out.push_str(&k.to_string()),
                }
                out.push_str(",\"stem_states\":");
                push_debug_list(&mut out, l.stem.states().iter());
                out.push_str(",\"stem_actions\":");
                push_debug_list(&mut out, l.stem.actions().iter());
                out.push_str(",\"cycle_actions\":");
                push_debug_list(&mut out, l.cycle.iter().map(|(a, _)| a));
                out.push_str(",\"cycle_states\":");
                push_debug_list(&mut out, l.cycle.iter().map(|(_, s)| s));
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

const NO_SCC: u32 = u32::MAX;

struct SccDecomposition {
    /// SCC id per vertex; `NO_SCC` for vertices outside the region.
    id: Vec<u32>,
    /// Number of SCCs found in the region.
    count: usize,
    /// Per SCC: can it sustain a cycle (size ≥ 2, or a self-loop)?
    cyclic: Vec<bool>,
}

/// Evaluates [`Property`]s over a [`ReachableGraph`], with optional
/// admissibility and fairness constraints on liveness cycles.
///
/// Everything the checker computes — SCC decomposition, lasso head
/// choice, stem and cycle — visits vertices in **graph index order** and
/// neighbors in successor-list order, both of which the graph builder
/// fixes independently of worker count. Verdicts and witnesses are
/// therefore byte-identical for any `Search::workers` value.
pub struct Checker<'a, S, A> {
    g: &'a ReachableGraph<S, A>,
    admissible: Option<Box<dyn Fn(&S) -> bool + 'a>>,
    classes: usize,
    class_of: Option<Box<dyn Fn(&A) -> Option<usize> + 'a>>,
}

impl<'a, S, A> Checker<'a, S, A>
where
    S: Clone + Debug,
    A: Clone + Debug,
{
    /// A checker over `g` with no admissibility or fairness constraints.
    pub fn new(g: &'a ReachableGraph<S, A>) -> Self {
        Checker {
            g,
            admissible: None,
            classes: 0,
            class_of: None,
        }
    }

    /// Restrict which states may repeat forever: liveness cycles (and
    /// lasso heads) must satisfy `f`. The stem is unrestricted — only the
    /// infinitely-repeated part must stay admissible. FLP's "no message to
    /// a live process stays pending" goes here.
    pub fn admissible(mut self, f: impl Fn(&S) -> bool + 'a) -> Self {
        self.admissible = Some(Box::new(f));
        self
    }

    /// Require liveness cycles to contain an action of every class
    /// `0..classes` (weak fairness; FLP's "every live process keeps
    /// stepping" assigns each live process a class). `class_of` maps an
    /// action to its class, or `None` for unclassified actions.
    ///
    /// # Panics
    ///
    /// Panics if `classes > 32` (class coverage is tracked in a `u32`
    /// mask; the workspace's instances have at most a handful of
    /// processes).
    pub fn fairness(
        mut self,
        classes: usize,
        class_of: impl Fn(&A) -> Option<usize> + 'a,
    ) -> Self {
        assert!(classes <= 32, "at most 32 fairness classes");
        self.classes = classes;
        self.class_of = Some(Box::new(class_of));
        self
    }

    /// Check `prop`, untraced.
    pub fn check(&self, prop: &Property<'_, S>) -> PropertyReport<S, A> {
        self.check_traced(prop, &mut NoopTracer)
    }

    /// Check `prop`, emitting `scope: "property"` events (see
    /// `docs/PROPERTIES.md` for the vocabulary).
    pub fn check_traced(
        &self,
        prop: &Property<'_, S>,
        tracer: &mut dyn Tracer,
    ) -> PropertyReport<S, A> {
        trace_event!(tracer, "property", "check.start",
            "name": prop.name.as_str(),
            "property": prop.kind_name(),
            "states": self.g.len(),
            "edges": self.g.num_edges(),
            "truncated": self.g.truncated());
        let report = match &prop.kind {
            PropKind::Always(p) => self.safety(prop, |s| !p(s)),
            PropKind::Never(p) => self.safety(prop, |s| p(s)),
            PropKind::Eventually(p) => self.liveness(prop, |s| !p(s), None, tracer),
            PropKind::LeadsTo(p, q) => self.liveness(prop, |s| !q(s), Some(p), tracer),
        };
        let (ce, stem, cycle) = match &report.counterexample {
            None => ("none", 0usize, 0usize),
            Some(Counterexample::BadState(e)) => ("bad-state", e.len(), 0),
            Some(Counterexample::Lasso(l)) => ("lasso", l.stem.len(), l.cycle.len()),
        };
        trace_event!(tracer, "property", "verdict",
            "name": prop.name.as_str(),
            "holds": report.holds,
            "counterexample": ce,
            "stem": stem,
            "cycle": cycle);
        report
    }

    fn report_shell(&self, prop: &Property<'_, S>) -> PropertyReport<S, A> {
        PropertyReport {
            name: prop.name.clone(),
            kind: prop.kind_name(),
            holds: true,
            states: self.g.len(),
            edges: self.g.num_edges(),
            region: 0,
            sccs: 0,
            candidate_sccs: 0,
            truncated: self.g.truncated(),
            counterexample: None,
        }
    }

    // ---- safety: reachability of a violating state --------------------

    fn safety(
        &self,
        prop: &Property<'_, S>,
        violates: impl Fn(&S) -> bool,
    ) -> PropertyReport<S, A> {
        let bad: Vec<bool> = self.g.order.iter().map(|s| violates(s)).collect();
        let mut report = self.report_shell(prop);
        report.region = bad.iter().filter(|&&b| b).count();
        // Graph indices are BFS discovery order, so the first violating
        // index sits at minimal depth; the BFS below recovers the
        // (shortest) path to it.
        if let Some(target) = bad.iter().position(|&b| b) {
            let (path, actions) = self
                .bfs_to(&self.initial_indices(), &|_| true, &|i| i == target)
                .expect("every graph state is reachable from the initials");
            report.holds = false;
            report.counterexample = Some(Counterexample::BadState(self.execution_of(path, actions)));
        }
        report
    }

    // ---- liveness: SCC lasso detection --------------------------------

    /// `in_region` is goal-avoidance (`¬p` for `eventually(p)`, `¬q` for
    /// `leads_to(p, q)`); `trigger` is `leads_to`'s `p`.
    fn liveness(
        &self,
        prop: &Property<'_, S>,
        in_region: impl Fn(&S) -> bool,
        trigger: Option<&Pred<'_, S>>,
        tracer: &mut dyn Tracer,
    ) -> PropertyReport<S, A> {
        let n = self.g.len();
        let region: Vec<bool> = self.g.order.iter().map(|s| in_region(s)).collect();
        let cyc_ok: Vec<bool> = match &self.admissible {
            None => region.clone(),
            Some(f) => self
                .g
                .order
                .iter()
                .zip(&region)
                .map(|(s, &r)| r && f(s))
                .collect(),
        };

        let scc = self.tarjan(&cyc_ok);
        let full: u32 = if self.classes > 0 {
            (1u32 << self.classes) - 1
        } else {
            0
        };
        // Per SCC, the fairness classes its *internal* edges cover.
        let mut cover: Vec<u32> = vec![0; scc.count];
        for v in 0..n {
            if !cyc_ok[v] {
                continue;
            }
            for (a, t) in &self.g.succ[v] {
                if cyc_ok[*t] && scc.id[*t] == scc.id[v] {
                    cover[scc.id[v] as usize] |= self.class_bit(a);
                }
            }
        }
        let candidate_scc: Vec<bool> = (0..scc.count)
            .map(|c| scc.cyclic[c] && cover[c] == full)
            .collect();
        // A terminal state stutters forever (an implicit self-loop). That
        // sustains a violation only when no fairness class demands real
        // steps around the loop.
        let stutter_ok = self.classes == 0;
        let is_candidate = |i: usize| {
            cyc_ok[i]
                && ((scc.id[i] != NO_SCC && candidate_scc[scc.id[i] as usize])
                    || (stutter_ok && self.g.succ[i].is_empty()))
        };

        let mut report = self.report_shell(prop);
        report.region = cyc_ok.iter().filter(|&&b| b).count();
        report.sccs = scc.count;
        report.candidate_sccs = candidate_scc.iter().filter(|&&b| b).count();
        trace_event!(tracer, "property", "scc",
            "region": report.region,
            "sccs": report.sccs,
            "candidates": report.candidate_sccs);

        let lasso = match trigger {
            // eventually(p): the whole violating run avoids p, so the stem
            // must stay inside the region too.
            None => self
                .bfs_to(&self.initial_indices(), &|i| region[i], &is_candidate)
                .map(|(path, actions)| (path, actions, None)),
            // leads_to(p, q): the run may satisfy q freely before the
            // trigger; only the suffix from the p-state avoids q. Find the
            // earliest reachable p∧¬q state that can reach a candidate
            // head inside ¬q, then bridge pivot → head inside ¬q.
            Some(p) => {
                let can_reach = self.reverse_reachable(&region, &is_candidate);
                self.bfs_to(&self.initial_indices(), &|_| true, &|i| {
                    region[i] && can_reach[i] && p(&self.g.order[i])
                })
                .map(|(path, actions)| {
                    let pivot = *path.last().expect("paths are nonempty");
                    let (tail, tail_actions) = self
                        .bfs_to(&[pivot], &|i| region[i], &is_candidate)
                        .expect("reverse reachability admitted this pivot");
                    let pivot_at = path.len() - 1;
                    let mut path = path;
                    let mut actions = actions;
                    path.extend_from_slice(&tail[1..]);
                    actions.extend(tail_actions);
                    (path, actions, Some(pivot_at))
                })
            }
        };

        if let Some((path, actions, pivot)) = lasso {
            let head = *path.last().expect("paths are nonempty");
            let cycle = if self.g.succ[head].is_empty() {
                Vec::new()
            } else {
                self.fair_cycle(head, &cyc_ok, &scc.id, full)
            };
            report.holds = false;
            report.counterexample = Some(Counterexample::Lasso(Lasso {
                stem: self.execution_of(path, actions),
                cycle,
                pivot,
            }));
        }
        report
    }

    fn class_bit(&self, a: &A) -> u32 {
        match (&self.class_of, self.classes) {
            (Some(f), c) if c > 0 => match f(a) {
                Some(k) if k < c => 1 << k,
                _ => 0,
            },
            _ => 0,
        }
    }

    fn initial_indices(&self) -> Vec<usize> {
        (0..self.g.initials).collect()
    }

    fn execution_of(&self, path: Vec<usize>, actions: Vec<A>) -> Execution<S, A> {
        Execution::from_parts(
            path.iter().map(|&i| self.g.order[i].clone()).collect(),
            actions,
        )
    }

    /// Deterministic FIFO BFS from `starts` (in order) over `allowed`
    /// states; returns the index path and actions to the first `goal`
    /// state dequeued — the nearest one, ties broken by discovery order.
    fn bfs_to(
        &self,
        starts: &[usize],
        allowed: &dyn Fn(usize) -> bool,
        goal: &dyn Fn(usize) -> bool,
    ) -> Option<(Vec<usize>, Vec<A>)> {
        let n = self.g.len();
        let mut seen = vec![false; n];
        // parent[v] = (previous state, edge index into succ[previous]).
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut q: VecDeque<usize> = VecDeque::new();
        for &s in starts {
            if allowed(s) && !seen[s] {
                seen[s] = true;
                q.push_back(s);
            }
        }
        while let Some(v) = q.pop_front() {
            if goal(v) {
                let mut path = vec![v];
                let mut actions = Vec::new();
                let mut cur = v;
                while let Some((pv, ei)) = parent[cur] {
                    actions.push(self.g.succ[pv][ei].0.clone());
                    path.push(pv);
                    cur = pv;
                }
                path.reverse();
                actions.reverse();
                return Some((path, actions));
            }
            for (ei, (_, t)) in self.g.succ[v].iter().enumerate() {
                if allowed(*t) && !seen[*t] {
                    seen[*t] = true;
                    parent[*t] = Some((v, ei));
                    q.push_back(*t);
                }
            }
        }
        None
    }

    /// Which `allowed` states can reach a `goal` state through `allowed`
    /// states (multi-source reverse BFS; pure membership, order-free).
    fn reverse_reachable(
        &self,
        allowed: &[bool],
        goal: &dyn Fn(usize) -> bool,
    ) -> Vec<bool> {
        let n = self.g.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            if !allowed[v] {
                continue;
            }
            for (_, t) in &self.g.succ[v] {
                if allowed[*t] {
                    rev[*t].push(v);
                }
            }
        }
        let mut can = vec![false; n];
        let mut q: VecDeque<usize> = VecDeque::new();
        for v in 0..n {
            if allowed[v] && goal(v) {
                can[v] = true;
                q.push_back(v);
            }
        }
        while let Some(v) = q.pop_front() {
            for &u in &rev[v] {
                if !can[u] {
                    can[u] = true;
                    q.push_back(u);
                }
            }
        }
        can
    }

    /// Iterative Tarjan over the subgraph induced by `keep`, visiting
    /// roots in ascending index order and neighbors in successor-list
    /// order — the decomposition (ids, count, cyclic flags) is a pure
    /// function of the graph.
    fn tarjan(&self, keep: &[bool]) -> SccDecomposition {
        let n = keep.len();
        let mut index = vec![NO_SCC; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut id = vec![NO_SCC; n];
        let mut cyclic: Vec<bool> = Vec::new();
        let mut count = 0usize;
        let mut next_index = 0u32;
        let mut frames: Vec<(usize, usize)> = Vec::new();

        for root in 0..n {
            if !keep[root] || index[root] != NO_SCC {
                continue;
            }
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            frames.push((root, 0));
            while let Some(&(v, ei)) = frames.last() {
                if ei < self.g.succ[v].len() {
                    frames.last_mut().expect("nonempty").1 += 1;
                    let w = self.g.succ[v][ei].1;
                    if !keep[w] {
                        continue;
                    }
                    if index[w] == NO_SCC {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(u, _)) = frames.last() {
                        low[u] = low[u].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let cid = count as u32;
                        let mut size = 0usize;
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            id[w] = cid;
                            size += 1;
                            if w == v {
                                break;
                            }
                        }
                        cyclic.push(size >= 2);
                        count += 1;
                    }
                }
            }
        }
        // Size-1 SCCs still cycle if they carry a self-loop.
        for v in 0..n {
            if !keep[v] || cyclic[id[v] as usize] {
                continue;
            }
            if self.g.succ[v].iter().any(|(_, t)| *t == v && keep[*t]) {
                cyclic[id[v] as usize] = true;
            }
        }
        SccDecomposition { id, count, cyclic }
    }

    /// Shortest cycle through `head` inside its SCC containing an action
    /// of every fairness class: BFS over `(state, classes-seen)` product
    /// nodes, FIFO, neighbors in successor order — deterministic. The SCC
    /// is strongly connected and (for candidates) its internal edges cover
    /// every class, so the cycle exists.
    fn fair_cycle(&self, head: usize, cyc_ok: &[bool], id: &[u32], full: u32) -> Vec<(A, S)> {
        let cid = id[head];
        let mut parent: BTreeMap<(usize, u32), (usize, u32, usize)> = BTreeMap::new();
        let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
        let mut q: VecDeque<(usize, u32)> = VecDeque::new();
        seen.insert((head, 0));
        q.push_back((head, 0));
        while let Some((v, mask)) = q.pop_front() {
            for (ei, (a, t)) in self.g.succ[v].iter().enumerate() {
                if !cyc_ok[*t] || id[*t] != cid {
                    continue;
                }
                let nmask = mask | self.class_bit(a);
                if *t == head && nmask == full {
                    // Reconstruct: parent chain back to (head, 0), then
                    // this closing edge.
                    let mut edges: Vec<(usize, usize)> = vec![(v, ei)];
                    let mut cur = (v, mask);
                    while cur != (head, 0) {
                        let (pv, pm, pei) = parent[&cur];
                        edges.push((pv, pei));
                        cur = (pv, pm);
                    }
                    edges.reverse();
                    return edges
                        .into_iter()
                        .map(|(src, ei)| {
                            let (a, dst) = &self.g.succ[src][ei];
                            (a.clone(), self.g.order[*dst].clone())
                        })
                        .collect();
                }
                let node = (*t, nmask);
                if !seen.contains(&node) {
                    seen.insert(node);
                    parent.insert(node, (v, mask, ei));
                    q.push_back(node);
                }
            }
        }
        unreachable!("candidate SCCs admit a fair cycle through every member")
    }
}

impl<'a, Sys: System> Search<'a, Sys>
where
    Sys::State: Encode,
{
    /// Build the reachable graph and check `prop` over it, with no
    /// admissibility or fairness constraints. Use [`Checker`] directly
    /// (over [`Search::graph`] / [`Search::graph_filtered`]) when cycles
    /// must be admissible or fair.
    pub fn check_property(
        &self,
        prop: &Property<'_, Sys::State>,
    ) -> PropertyReport<Sys::State, Sys::Action> {
        self.check_property_traced(prop, &mut NoopTracer)
    }

    /// [`Search::check_property`] with `scope: "property"` trace events.
    pub fn check_property_traced(
        &self,
        prop: &Property<'_, Sys::State>,
        tracer: &mut dyn Tracer,
    ) -> PropertyReport<Sys::State, Sys::Action> {
        let g = self.graph();
        let report = Checker::new(&g).check_traced(prop, tracer);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FpHasher;
    use crate::grid::Grid;
    use impossible_obs::RingTracer;

    /// `0 → 1 → … → max → wrap_to → …`: a stem into a cycle.
    struct Loop {
        max: u64,
        wrap_to: u64,
    }
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct L(u64);
    impl Encode for L {
        fn encode(&self, h: &mut FpHasher) {
            self.0.encode(h);
        }
    }
    impl System for Loop {
        type State = L;
        type Action = u64;
        fn initial_states(&self) -> Vec<L> {
            vec![L(0)]
        }
        fn enabled(&self, _: &L) -> Vec<u64> {
            vec![0]
        }
        fn step(&self, s: &L, _: &u64) -> L {
            if s.0 == self.max {
                L(self.wrap_to)
            } else {
                L(s.0 + 1)
            }
        }
    }

    #[test]
    fn always_holds_and_reports_no_counterexample() {
        let sys = Grid { n: 2, max: 2 };
        let r = Search::new(&sys).check_property(&always("in-range", |s: &Vec<u8>| {
            s.iter().all(|&c| c <= 2)
        }));
        assert!(r.holds);
        assert_eq!(r.states, 9);
        assert_eq!(r.region, 0);
        assert!(r.counterexample.is_none());
    }

    #[test]
    fn never_violation_yields_shortest_witness() {
        let sys = Grid { n: 2, max: 3 };
        let r = Search::new(&sys).check_property(&never("sum-2", |s: &Vec<u8>| {
            s.iter().map(|&c| c as u32).sum::<u32>() == 2
        }));
        assert!(!r.holds);
        match r.counterexample.expect("violated") {
            Counterexample::BadState(e) => {
                assert_eq!(e.len(), 2, "sum 2 is reachable in exactly 2 steps");
                assert_eq!(e.last().iter().map(|&c| c as u32).sum::<u32>(), 2);
                assert_eq!(e.first(), &vec![0, 0]);
            }
            other => panic!("expected bad-state, got {other:?}"),
        }
    }

    #[test]
    fn eventually_violation_yields_stem_and_cycle() {
        // 0 → 1 → 2 → 3 → 4 → 2: stem of 2 steps, cycle of 3.
        let sys = Loop { max: 4, wrap_to: 2 };
        let r = Search::new(&sys).check_property(&eventually("reaches-9", |s: &L| s.0 == 9));
        assert!(!r.holds);
        assert_eq!(r.region, 5);
        match r.counterexample.expect("violated") {
            Counterexample::Lasso(l) => {
                assert_eq!(l.pivot, None);
                assert_eq!(l.stem.last(), &L(2), "head is the first cycle state");
                assert_eq!(l.stem.len(), 2);
                assert_eq!(l.cycle.len(), 3);
                assert_eq!(l.cycle.last().expect("nonempty").1, L(2), "cycle closes");
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn eventually_holds_when_every_run_reaches_goal() {
        // The cycle contains 2; "eventually 2" has no avoiding lasso.
        let sys = Loop { max: 4, wrap_to: 2 };
        let r = Search::new(&sys).check_property(&eventually("reaches-2", |s: &L| s.0 == 2));
        assert!(r.holds);
        assert!(r.counterexample.is_none());
        // The ¬goal region {0, 1, 3, 4} is acyclic: 4 singleton SCCs.
        assert_eq!(r.region, 4);
        assert_eq!(r.sccs, 4);
        assert_eq!(r.candidate_sccs, 0);
    }

    #[test]
    fn terminal_state_counts_as_stutter_violation() {
        // Grid terminates at the all-max corner; a run stuttering there
        // never reaches a sum of 99.
        let sys = Grid { n: 2, max: 1 };
        let r = Search::new(&sys).check_property(&eventually("sum-99", |s: &Vec<u8>| {
            s.iter().map(|&c| c as u32).sum::<u32>() == 99
        }));
        assert!(!r.holds);
        match r.counterexample.expect("violated") {
            Counterexample::Lasso(l) => {
                assert_eq!(l.stem.last(), &vec![1, 1], "terminal corner");
                assert!(l.cycle.is_empty(), "stutter lasso has no cycle steps");
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn leads_to_violation_pinpoints_the_pivot() {
        // 0 → 1 → 2 → 3 → 1: "state 2 leads to state 0" fails; the pivot
        // is the visit to 2, after which the run cycles in {1, 2, 3}.
        let sys = Loop { max: 3, wrap_to: 1 };
        let r = Search::new(&sys).check_property(&leads_to(
            "two-then-zero",
            |s: &L| s.0 == 2,
            |s: &L| s.0 == 0,
        ));
        assert!(!r.holds);
        match r.counterexample.expect("violated") {
            Counterexample::Lasso(l) => {
                let k = l.pivot.expect("leads-to sets the pivot");
                assert_eq!(l.stem.states()[k], L(2), "trigger state");
                assert!(!l.cycle.is_empty());
                assert!(
                    l.cycle.iter().all(|(_, s)| s.0 != 0),
                    "the cycle avoids the response"
                );
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn leads_to_holds_when_response_always_follows() {
        // 0 → 1 → 2 → 0: from 1 the run inevitably revisits 0.
        let sys = Loop { max: 2, wrap_to: 0 };
        let r = Search::new(&sys).check_property(&leads_to(
            "one-then-zero",
            |s: &L| s.0 == 1,
            |s: &L| s.0 == 0,
        ));
        assert!(r.holds, "the ¬0 region {{1, 2}} is acyclic");
    }

    /// Two processes each with a private self-loop and a handshake cycle.
    /// Under per-process fairness only the handshake sustains a fair run.
    struct Handshake;
    impl System for Handshake {
        type State = L;
        type Action = u64; // action = owning process (0 or 1), +2 for the handshake hop
        fn initial_states(&self) -> Vec<L> {
            vec![L(0)]
        }
        fn enabled(&self, s: &L) -> Vec<u64> {
            match s.0 {
                0 => vec![0, 2], // p0 self-loop, or hop to 1
                _ => vec![1, 3], // p1 self-loop, or hop back to 0
            }
        }
        fn step(&self, s: &L, a: &u64) -> L {
            match a {
                0 | 1 => s.clone(),
                2 => L(1),
                _ => L(0),
            }
        }
    }

    #[test]
    fn fairness_forces_the_cycle_to_cover_every_class() {
        let g = Search::new(&Handshake).graph();
        let prop = eventually("done", |_: &L| false);
        // Unfair: the p0 self-loop alone is a (shortest) violating cycle.
        let unfair = Checker::new(&g).check(&prop);
        match unfair.counterexample.expect("violated") {
            Counterexample::Lasso(l) => assert_eq!(l.cycle.len(), 1),
            other => panic!("expected lasso, got {other:?}"),
        }
        // Fair: the cycle must contain a step of each process; the
        // shortest such cycle is the 2-step handshake (self-loops alone
        // cannot cover both classes).
        let fair = Checker::new(&g)
            .fairness(2, |a: &u64| Some((*a % 2) as usize))
            .check(&prop);
        match fair.counterexample.expect("still violated") {
            Counterexample::Lasso(l) => {
                assert_eq!(l.cycle.len(), 2);
                let classes: BTreeSet<u64> = l.cycle.iter().map(|(a, _)| a % 2).collect();
                assert_eq!(classes.len(), 2, "both processes step in the cycle");
            }
            other => panic!("expected lasso, got {other:?}"),
        }
    }

    #[test]
    fn admissibility_restricts_cycle_states_but_not_the_stem() {
        // 0 → 1 → 2 → 3 → 1: ban state 3 from repeating forever; the
        // region {1, 2, 3} minus 3 is acyclic, so the check holds even
        // though an unconstrained lasso exists.
        let sys = Loop { max: 3, wrap_to: 1 };
        let g = Search::new(&sys).graph();
        let prop = eventually("reaches-0-again", |s: &L| s.0 == 9);
        let unconstrained = Checker::new(&g).check(&prop);
        assert!(!unconstrained.holds);
        let constrained = Checker::new(&g).admissible(|s: &L| s.0 != 3).check(&prop);
        assert!(constrained.holds, "no admissible cycle without state 3");
    }

    #[test]
    fn truncated_graphs_mark_the_report() {
        let sys = Grid { n: 2, max: 50 };
        let r = Search::new(&sys)
            .max_states(10)
            .check_property(&always("in-range", |_: &Vec<u8>| true));
        assert!(r.holds);
        assert!(r.truncated);
    }

    #[test]
    fn report_json_is_canonical() {
        let sys = Loop { max: 4, wrap_to: 2 };
        let r = Search::new(&sys).check_property(&eventually("reaches-9", |s: &L| s.0 == 9));
        assert_eq!(
            r.to_json(),
            "{\"name\":\"reaches-9\",\"kind\":\"eventually\",\"holds\":false,\
             \"states\":5,\"edges\":5,\"region\":5,\"sccs\":3,\"candidate_sccs\":1,\
             \"truncated\":false,\"counterexample\":{\"type\":\"lasso\",\"pivot\":null,\
             \"stem_states\":[\"L(0)\",\"L(1)\",\"L(2)\"],\"stem_actions\":[\"0\",\"0\"],\
             \"cycle_actions\":[\"0\",\"0\",\"0\"],\"cycle_states\":[\"L(3)\",\"L(4)\",\"L(2)\"]}}"
        );
        // Byte-determinism: same check, same bytes.
        let again = Search::new(&sys).check_property(&eventually("reaches-9", |s: &L| s.0 == 9));
        assert_eq!(r.to_json(), again.to_json());
    }

    #[test]
    fn json_escapes_are_correct() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn traced_twin_emits_the_property_vocabulary() {
        let sys = Loop { max: 4, wrap_to: 2 };
        let mut tracer = RingTracer::new(64);
        let r = Search::new(&sys)
            .check_property_traced(&eventually("reaches-9", |s: &L| s.0 == 9), &mut tracer);
        assert!(!r.holds);
        let kinds: Vec<&str> = tracer.events().iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["check.start", "scc", "verdict"]);
        assert!(tracer.events().iter().all(|e| e.scope == "property"));
        // The untraced twin returns the identical report.
        let untraced = Search::new(&sys).check_property(&eventually("reaches-9", |s: &L| s.0 == 9));
        assert_eq!(r.to_json(), untraced.to_json());
    }
}

//! External-memory BFS: exploration past RAM with byte-identical reports.
//!
//! ROADMAP item 1. The resident engine ([`crate::search`]) holds the whole
//! visited set in [`ShardedFpMap`] and the whole frontier in partitioned
//! `Vec`s; at 10⁷–10⁸ states that is gigabytes of tables, and the
//! interesting model-checking instances (the survey's arguments are only
//! as convincing as the spaces we can exhaust) go further. This module
//! spills *cold visited shards* — and optionally frontier partitions — to
//! deterministic per-shard run files, and streams them back per level,
//! without changing a single byte of the report:
//!
//! * **Spill unit = shard, boundary = level.** When the resident visited
//!   set exceeds [`SpillPolicy::ram_keys`] at a level boundary, every
//!   shard pages out via `FpMap::iter_ordered` (ascending stored key — the
//!   canonical order checkpoints already use) into a delta+varint
//!   [run page](crate::page) at `shard{k:03}.run{r:03}`, then clears. A
//!   key lives in RAM **or** in exactly one run file, never both: spilled
//!   keys are never re-inserted, because membership is probed before every
//!   commit.
//! * **Per-level probe/stage/commit.** Pass 1 is the resident engine's own
//!   parallel expansion ([`crate::search`]'s `expand_pass1`), children
//!   bucketed by destination shard. Each shard's worker then probes its
//!   resident shard and a level-local dedup table, stages
//!   tentatively-fresh children in traversal order, intersects the staged
//!   keys against the shard's run files (sorted-merge over the run pages'
//!   key blocks — values never decoded), and commits the survivors in
//!   staged order. The committed sequence per shard is provably the
//!   first-occurrence order of genuinely-new keys — exactly what the
//!   resident engine's worker-local insert produces — so `next_parts`,
//!   `dedup_hits`, terminals and every other report byte agree.
//! * **Cap levels replay j-major.** On the rare level where
//!   `visited + children > max_states`, dedup-vs-cap precedence for keys
//!   recurring in-level matters, so (like the resident engine) the level
//!   replays sequentially in exact j-major order via the pass-1 `route`,
//!   with disk membership precomputed per shard. `cap_fallbacks` counts
//!   these levels identically.
//! * **Memory is accounted, not guessed.** [`crate::SearchStats::peak_bytes`]
//!   samples the same shallow formula as the resident engine (table slot
//!   arrays + frontier records at fixed widths) at every level boundary —
//!   deterministic integer accounting, no RSS syscall — so "bounded peak
//!   RSS" is a recorded number, and the spilled run's lower figure is
//!   directly comparable.
//!
//! What is *not* supported: collision audit (it keeps full states resident
//!   by design) and pause/resume (a spilled run already has durable pages;
//!   wiring `SearchCheckpoint` to reference them is ROADMAP follow-on).
//! Witness replay works — parent links live in the run pages, and the
//! cold lookup walks them from disk.
//!
//! Run files are scratch, not durable artifacts: they are rewritten
//! wholesale per flush, a crash mid-write only aborts the search, and each
//! search must be given its own [`SpillPolicy`] directory. See
//! `docs/EXTMEM.md` for the full determinism argument and page layout.

use crate::fingerprint::Encode;
use crate::page::{decode_frontier_page, decode_run_page, encode_frontier_page, encode_run_page, run_page_keys};
use crate::persist::Persist;
use crate::pool::WorkerPool;
use crate::search::{BfsRun, Expanded, Parent, Search, SearchReport};
use crate::table::{key_of, shard_index, Cap, FpMap, ShardedFpMap, TryInsert};
use impossible_core::explore::Truncation;
use impossible_core::system::System;
use impossible_obs::NoopTracer;
use std::path::PathBuf;

/// Where and when the external-memory engine spills.
///
/// ```no_run
/// use impossible_explore::{Grid, Search, SpillPolicy};
///
/// // Doctests have no scratch dir; `tests/extmem_spill.rs` runs this for
/// // real under `CARGO_TARGET_TMPDIR`.
/// let sys = Grid { n: 3, max: 3 };
/// let policy = SpillPolicy::new("spill-scratch").ram_keys(50).spill_frontier(true);
/// let spilled = Search::new(&sys).explore_extmem(&policy);
/// let resident = Search::new(&sys).explore();
/// assert_eq!(spilled.num_states, resident.num_states);
/// assert_eq!(spilled.stats.dedup_hits, resident.stats.dedup_hits);
/// assert!(spilled.stats.peak_bytes < resident.stats.peak_bytes);
/// ```
#[derive(Debug, Clone)]
pub struct SpillPolicy {
    dir: PathBuf,
    ram_keys: usize,
    spill_frontier: bool,
}

impl SpillPolicy {
    /// Spill into `dir` (created on first use; must be private to one
    /// search) with a generous default resident budget of 2²⁰ visited keys
    /// and no frontier spilling.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillPolicy {
            dir: dir.into(),
            ram_keys: 1 << 20,
            spill_frontier: false,
        }
    }

    /// Flush visited shards to run files whenever the resident key count
    /// reaches `n` at a level boundary. `0` spills every level.
    pub fn ram_keys(mut self, n: usize) -> Self {
        self.ram_keys = n;
        self
    }

    /// Also page frontier partitions to disk between levels; pass-1
    /// workers stream their partitions back one at a time, so no level
    /// start holds the whole frontier resident.
    pub fn spill_frontier(mut self, on: bool) -> Self {
        self.spill_frontier = on;
        self
    }

    /// The spill directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The resident visited-key budget.
    pub fn ram_keys_value(&self) -> usize {
        self.ram_keys
    }

    /// Whether frontier partitions page to disk between levels.
    pub fn spill_frontier_value(&self) -> bool {
        self.spill_frontier
    }
}

/// The on-disk half of a spilled search: run files per shard, paged
/// frontier partitions, and the key counts that keep `num_states` and the
/// cap exact without touching disk.
struct DiskState {
    dir: PathBuf,
    /// Completed visited flushes (names the next run generation).
    flushes: usize,
    /// Run files per shard, in flush order. Key-disjoint by construction.
    runs: Vec<Vec<PathBuf>>,
    /// Total keys across all run files.
    spilled: usize,
    /// True when the *current* frontier lives in `front{k:03}.page` files.
    frontier_paged: bool,
    /// Per-partition lengths of the paged frontier (`frontier_paged` only).
    part_lens: Vec<usize>,
    /// One reusable read buffer per shard for membership probes: run files
    /// are re-read every level, and a fresh `fs::read` allocation per file
    /// per level is pure churn. The buffer is cleared (capacity retained)
    /// before each read. Deliberately *not* counted in `peak_bytes` — the
    /// accounting formula covers table slots and frontier records only,
    /// and must not change between the buffered and unbuffered read paths.
    read_bufs: Vec<Vec<u8>>,
}

impl DiskState {
    fn new(partitions: usize, policy: &SpillPolicy) -> Self {
        std::fs::create_dir_all(policy.dir())
            .unwrap_or_else(|e| panic!("spill dir {}: {e}", policy.dir().display()));
        DiskState {
            dir: policy.dir().to_path_buf(),
            flushes: 0,
            runs: (0..partitions).map(|_| Vec::new()).collect(),
            spilled: 0,
            frontier_paged: false,
            part_lens: vec![0; partitions],
            read_bufs: (0..partitions).map(|_| Vec::new()).collect(),
        }
    }

    /// Page every non-empty visited shard out as one run file and clear it.
    /// Probes keep spilled keys from ever being re-committed, so each key
    /// lands in exactly one run across the whole search.
    fn flush_visited<A: Persist + Clone>(&mut self, visited: &mut ShardedFpMap<Parent<A>>) {
        let r = self.flushes;
        for (k, shard) in visited.shards_mut().iter_mut().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let entries: Vec<(u64, Parent<A>)> =
                shard.iter_ordered().map(|(key, v)| (key, v.clone())).collect();
            let page = encode_run_page(&entries);
            let path = self.dir.join(format!("shard{k:03}.run{r:03}"));
            std::fs::write(&path, page)
                .unwrap_or_else(|e| panic!("spill write {}: {e}", path.display()));
            self.runs[k].push(path);
            self.spilled += entries.len();
            shard.clear();
        }
        self.flushes += 1;
        visited.refresh_len();
    }

    /// Page the next frontier out, one file per non-empty partition
    /// (overwritten each level), keeping only the lengths resident.
    fn store_frontier<S: Persist>(&mut self, parts: &[Vec<(u64, S)>]) {
        self.part_lens = parts.iter().map(Vec::len).collect();
        for (k, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let path = self.frontier_path(k);
            std::fs::write(&path, encode_frontier_page(part))
                .unwrap_or_else(|e| panic!("frontier write {}: {e}", path.display()));
        }
        self.frontier_paged = true;
    }

    /// Stream one paged frontier partition back, in its exact stored
    /// (traversal) order. `Persist` round trips are identities, so the
    /// decoded partition is the one the previous level produced.
    fn load_partition<S: Persist>(&self, k: usize) -> Vec<(u64, S)> {
        if self.part_lens[k] == 0 {
            return Vec::new();
        }
        let path = self.frontier_path(k);
        let buf = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("frontier read {}: {e}", path.display()));
        decode_frontier_page(&buf)
            .unwrap_or_else(|e| panic!("frontier page {}: {e}", path.display()))
    }

    fn frontier_path(&self, k: usize) -> PathBuf {
        self.dir.join(format!("front{k:03}.page"))
    }

    /// Cold-path parent lookup for witness replay: decode the owning
    /// shard's run pages until the key surfaces.
    fn lookup_spilled_parent<A: Persist>(&self, fp: u64, partitions: usize) -> Option<Parent<A>> {
        let k = shard_index(fp, partitions);
        let key = key_of(fp);
        for path in &self.runs[k] {
            let buf = std::fs::read(path)
                .unwrap_or_else(|e| panic!("run read {}: {e}", path.display()));
            let entries = decode_run_page::<Parent<A>>(&buf)
                .unwrap_or_else(|e| panic!("run page {}: {e}", path.display()));
            if let Ok(i) = entries.binary_search_by_key(&key, |&(k, _)| k) {
                return Some(entries.into_iter().nth(i).expect("index in range").1);
            }
        }
        None
    }
}

/// Read `path` into `buf`, cleared first with capacity retained — the
/// per-shard buffer reuse that replaces a fresh `fs::read` allocation per
/// run file per level on the membership-probe hot path.
fn read_run_file(path: &PathBuf, buf: &mut Vec<u8>) {
    use std::io::Read;
    buf.clear();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(buf))
        .unwrap_or_else(|e| panic!("run read {}: {e}", path.display()));
}

/// Which staged keys are already in this shard's run files: a sorted-merge
/// of the (sorted, unique) staged keys against each run page's key block —
/// values never decoded, file bytes staged through the shard's reusable
/// `buf`. Returns the matches, sorted.
fn disk_membership(staged_keys: &[u64], runs: &[PathBuf], buf: &mut Vec<u8>) -> Vec<u64> {
    let mut old = Vec::new();
    for path in runs {
        read_run_file(path, buf);
        let run_keys = run_page_keys(buf)
            .unwrap_or_else(|e| panic!("run page {}: {e}", path.display()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < staged_keys.len() && j < run_keys.len() {
            match staged_keys[i].cmp(&run_keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    old.push(staged_keys[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    // Runs are key-disjoint, but their key ranges interleave.
    old.sort_unstable();
    old
}

/// Pass 2 of a spill-mode level for one shard, no cap pressure: probe the
/// resident shard and a level-local table, stage tentative-fresh children
/// in traversal order, subtract disk membership, commit survivors.
///
/// Extensionally equal to the resident engine's worker-local insert loop:
/// a child keys as a dedup hit here iff its key was visited before the
/// level (resident shard ∪ run files) or committed earlier in this shard's
/// traversal sequence — the same predicate `try_insert_with` evaluates
/// when every key is resident — and commits happen in first-occurrence
/// order, which is the resident fresh-list order.
fn classify_shard<S, A: Clone>(
    shard: &mut FpMap<Parent<A>>,
    groups: Vec<Vec<(u64, S, A, u64)>>,
    runs: &[PathBuf],
    buf: &mut Vec<u8>,
) -> (Vec<(u64, S)>, usize) {
    let mut dedup = 0usize;
    let mut staged: Vec<(u64, S, A, u64)> = Vec::new();
    let mut level_seen: FpMap<()> = FpMap::new();
    for group in groups {
        for (fp, tc, a, parent) in group {
            if shard.contains(fp) {
                dedup += 1;
                continue;
            }
            match level_seen.try_insert_with(fp, Cap::Unbounded, || ()) {
                TryInsert::Present => dedup += 1,
                TryInsert::Inserted => staged.push((fp, tc, a, parent)),
                TryInsert::Full => unreachable!("unbounded insert cannot refuse"),
            }
        }
    }
    let mut staged_keys: Vec<u64> = staged.iter().map(|&(fp, ..)| key_of(fp)).collect();
    staged_keys.sort_unstable();
    let old = disk_membership(&staged_keys, runs, buf);
    let mut fresh: Vec<(u64, S)> = Vec::new();
    for (fp, tc, a, parent) in staged {
        if old.binary_search(&key_of(fp)).is_ok() {
            dedup += 1;
        } else {
            let r = shard.try_insert_with(fp, Cap::Unbounded, || Parent::Child {
                parent,
                action: a,
            });
            debug_assert_eq!(r, TryInsert::Inserted, "staged keys are level-unique");
            fresh.push((fp, tc));
        }
    }
    (fresh, dedup)
}

impl<'a, Sys: System> Search<'a, Sys>
where
    Sys: Sync,
    Sys::State: Encode + Persist + Send + Sync,
    Sys::Action: Persist + Send + Sync,
{
    /// [`Search::explore`], external-memory mode: identical report bytes
    /// (modulo [`crate::SearchStats::peak_bytes`], which is the point), bounded
    /// resident memory per `policy`.
    pub fn explore_extmem(&self, policy: &SpillPolicy) -> SearchReport<Sys::State, Sys::Action> {
        self.run_extmem(None::<fn(&Sys::State) -> bool>, policy)
    }

    /// [`Search::search`], external-memory mode: BFS until `pred` matches;
    /// the witness replays through parent links even when they live in run
    /// files.
    pub fn search_extmem<F>(
        &self,
        pred: F,
        policy: &SpillPolicy,
    ) -> SearchReport<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::State) -> bool + Sync,
    {
        self.run_extmem(Some(pred), policy)
    }

    /// The external-memory level loop. Mirrors `bfs_levels` stage for
    /// stage — sampling, cutoff, expansion, classification, predicate scan
    /// — with spill hooks at the level boundaries where the resident
    /// engine's invariants already force full synchronization.
    fn run_extmem<F>(
        &self,
        pred: Option<F>,
        policy: &SpillPolicy,
    ) -> SearchReport<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::State) -> bool,
    {
        assert!(
            !self.audit_enabled(),
            "collision audit keeps full states resident; not supported in external-memory mode"
        );
        let (max_states, max_depth) = self.bounds();
        let nparts = self.partitions_value();
        let item_bytes = Self::frontier_item_bytes();
        let pool = WorkerPool::new(self.workers_value());
        let mut run: BfsRun<Sys> = self.bfs_init(&pool, pred.as_ref(), &mut NoopTracer);
        let mut disk = DiskState::new(nparts, policy);

        loop {
            let frontier_len: usize = if disk.frontier_paged {
                disk.part_lens.iter().sum()
            } else {
                run.parts.iter().map(Vec::len).sum()
            };
            if run.found.is_some() || frontier_len == 0 {
                break;
            }
            run.stats.peak_frontier = run.stats.peak_frontier.max(frontier_len);
            // Same shallow formula as the resident engine, but only what is
            // actually resident: a paged frontier counts its largest single
            // partition (the per-worker-slot bound — deliberately a
            // worker-count-independent convention).
            let resident_frontier = if disk.frontier_paged {
                disk.part_lens.iter().copied().max().unwrap_or(0)
            } else {
                frontier_len
            };
            run.stats.peak_bytes = run
                .stats
                .peak_bytes
                .max(run.visited.approx_bytes() + resident_frontier * item_bytes);

            if run.depth >= max_depth {
                // Cutoff level: record terminals, flag unexpanded work —
                // streaming partitions back one at a time if paged.
                for k in 0..nparts {
                    let loaded;
                    let part: &[(u64, Sys::State)] = if disk.frontier_paged {
                        loaded = disk.load_partition::<Sys::State>(k);
                        &loaded
                    } else {
                        &run.parts[k]
                    };
                    for (_, s) in part {
                        run.stats.expansions += 1;
                        if self.sys().enabled(s).is_empty() {
                            run.terminal.push(s.clone());
                        } else {
                            run.truncated_by.get_or_insert(Truncation::Depth);
                        }
                    }
                }
                break;
            }

            run.stats.levels += 1;
            let visited_before = run.visited.len() + disk.spilled;

            // Pass 1 — the resident engine's own parallel expansion; a
            // paged frontier decodes inside the owning worker instead of
            // ever being whole in memory.
            let mut recs: Vec<Expanded<Sys::State, Sys::Action>> = if disk.frontier_paged {
                let idx: Vec<usize> = (0..nparts).collect();
                pool.map_indexed(idx, |_, k| {
                    let part = disk.load_partition::<Sys::State>(k);
                    self.expand_one_partition(&part)
                })
            } else {
                self.expand_pass1(&pool, &run.parts)
            };

            // Stitch counters and terminals, in partition order.
            let mut level_children = 0usize;
            for rec in &mut recs {
                run.stats.expansions += rec.expansions;
                run.stats.canon_hits += rec.canon_hits;
                level_children += rec.children;
                run.terminal.append(&mut rec.terminals);
            }

            let mut next_parts: Vec<Vec<(u64, Sys::State)>> =
                (0..nparts).map(|_| Vec::new()).collect();

            if visited_before + level_children <= max_states {
                // Pass 2 — worker-local probe/stage/commit per shard.
                run.transitions += level_children;
                let mut per_shard: Vec<Vec<Vec<(u64, Sys::State, Sys::Action, u64)>>> =
                    (0..nparts).map(|_| Vec::with_capacity(recs.len())).collect();
                for rec in &mut recs {
                    for (k, bucket) in rec.by_shard.iter_mut().enumerate() {
                        per_shard[k].push(std::mem::take(bucket));
                    }
                }
                type ShardJob<'s, S, A> = (
                    &'s mut FpMap<Parent<A>>,
                    Vec<Vec<(u64, S, A, u64)>>,
                    &'s [PathBuf],
                    &'s mut Vec<u8>,
                );
                let jobs: Vec<ShardJob<'_, Sys::State, Sys::Action>> = run
                    .visited
                    .shards_mut()
                    .iter_mut()
                    .zip(per_shard)
                    .zip(disk.runs.iter())
                    .zip(disk.read_bufs.iter_mut())
                    .map(|(((shard, groups), runs), buf)| (shard, groups, runs.as_slice(), buf))
                    .collect();
                let results = pool.map_indexed(jobs, |_, (shard, groups, runs, buf)| {
                    classify_shard(shard, groups, runs, buf)
                });
                run.visited.refresh_len();
                for (k, (fresh, dedup)) in results.into_iter().enumerate() {
                    run.stats.dedup_hits += dedup;
                    next_parts[k] = fresh;
                }
            } else {
                // Cap could bind: dedup-vs-cap precedence for keys
                // recurring in-level depends on the exact insert sequence,
                // so replay j-major like the resident engine — with disk
                // membership for every child key precomputed per shard.
                let mut old_sets: Vec<Vec<u64>> = Vec::with_capacity(nparts);
                for k in 0..nparts {
                    let mut keys: Vec<u64> = recs
                        .iter()
                        .flat_map(|rec| rec.by_shard[k].iter().map(|&(fp, ..)| key_of(fp)))
                        .collect();
                    keys.sort_unstable();
                    keys.dedup();
                    old_sets.push(disk_membership(&keys, &disk.runs[k], &mut disk.read_bufs[k]));
                }
                for rec in recs {
                    let mut buckets: Vec<std::vec::IntoIter<_>> =
                        rec.by_shard.into_iter().map(Vec::into_iter).collect();
                    for &k in &rec.route {
                        let (fp, tc, a, parent) = buckets[k as usize]
                            .next()
                            .expect("route covers every bucketed child");
                        run.transitions += 1;
                        if run.visited.contains(fp)
                            || old_sets[k as usize].binary_search(&key_of(fp)).is_ok()
                        {
                            run.stats.dedup_hits += 1;
                        } else if run.visited.len() + disk.spilled >= max_states {
                            run.truncated_by.get_or_insert(Truncation::States);
                        } else {
                            let r = run.visited.try_insert_with(fp, Cap::Unbounded, || {
                                Parent::Child { parent, action: a }
                            });
                            debug_assert_eq!(r, TryInsert::Inserted, "probed fresh");
                            next_parts[k as usize].push((fp, tc));
                        }
                    }
                }
            }
            if visited_before + level_children > max_states {
                run.stats.cap_fallbacks += 1;
            }
            // Fold the pool's steal counters in at the level boundary —
            // the same pass structure as the resident engine (expand +
            // shard classify, cap levels sequential), so a spilled and a
            // resident run at the same worker count record the same
            // numbers.
            let (steal_passes, stolen) = pool.take_steals();
            run.stats.steals += steal_passes as usize;
            run.stats.stolen_shards += stolen as usize;

            // Predicate scan over the level's fresh states, shard-major —
            // the same placement that makes `found` worker-count invariant
            // in the resident engine.
            if let Some(p) = pred.as_ref() {
                'scan: for bucket in &next_parts {
                    for (fp, s) in bucket {
                        if p(s) {
                            run.found = Some(*fp);
                            break 'scan;
                        }
                    }
                }
            }

            // The next frontier is fully resident here (the commit path
            // materializes it): account for it before any of it pages out.
            let next_len: usize = next_parts.iter().map(Vec::len).sum();
            run.stats.peak_bytes = run
                .stats
                .peak_bytes
                .max(run.visited.approx_bytes() + next_len * item_bytes);

            // Spill hooks — level boundary, everything synchronized.
            if run.visited.len() >= policy.ram_keys_value() {
                disk.flush_visited(&mut run.visited);
            }
            if policy.spill_frontier_value() && run.found.is_none() {
                disk.store_frontier(&next_parts);
                run.parts = (0..nparts).map(|_| Vec::new()).collect();
            } else {
                run.parts = next_parts;
                disk.frontier_paged = false;
            }
            run.depth += 1;
        }

        let witness = run.found.map(|target| {
            let visited = &run.visited;
            let disk = &disk;
            self.replay_witness_with(target, |fp| {
                visited.get(fp).cloned().or_else(|| {
                    disk.lookup_spilled_parent::<Sys::Action>(fp, nparts)
                })
            })
        });

        SearchReport {
            num_states: run.visited.len() + disk.spilled,
            num_transitions: run.transitions,
            terminal_states: run.terminal,
            truncated_by: run.truncated_by,
            witness,
            stats: run.stats,
        }
    }
}

//! Exact reachable-graph construction for the analysis engines.
//!
//! The valence fixpoint, deadlock backward-reachability and lasso product
//! searches all need the full graph — states *and* successor lists — so a
//! fingerprint-only visited set is not enough, and a hash-indexed one would
//! make graph shape depend on collision luck. This builder keeps every
//! state (it must, to return them) and uses fingerprints purely as an
//! **index acceleration**: dedup probes a [`ShardedFpMap`] (the same
//! sharded table the BFS engine's visited set uses) for the first state
//! index seen under a fingerprint, then confirms with one full equality
//! comparison; the (astronomically rare) colliding fingerprints spill into
//! an overflow chain. A collision costs extra comparisons, never a wrong
//! graph — so graph-based classifications (valence, deadlock,
//! non-termination) are exact under any seed, while skipping the
//! per-fingerprint bucket allocations and per-expansion state clones that
//! kept the previous builder ~2.2× slower than `Search::explore` on the
//! same space (`BENCH_5.json` tracks the ratio; the cap is 1.5×).
//!
//! Construction itself stays sequential: graph indices are assigned in
//! global BFS discovery order, which downstream engines treat as stable,
//! and the builder is available under an `Encode`-only bound (the analysis
//! crates call it from generic contexts without `Send + Sync`). The perf
//! win comes from the shared sharded-table + encode-scratch machinery, not
//! from threads.
//!
//! Graphs honor the search's bounds — `max_states`, and (since the
//! spill-to-disk PR fixed the builder silently ignoring it) `max_depth`:
//! the FIFO cursor tracks BFS level boundaries, stops expanding at the
//! depth bound, and reports [`Truncation::Depth`] when unexpanded
//! non-terminal states remain, exactly like `Search::explore`. Interned
//! node indices are `u32`; the conversion is checked, surfacing as
//! [`Truncation::Index`] instead of a silent wrap, should a space ever
//! outgrow the index width before the state cap binds.

use crate::fingerprint::{BatchScratch, Encode};
use crate::search::Search;
use crate::table::{Cap, ShardedFpMap, TryInsert};
use impossible_core::explore::Truncation;
use impossible_core::system::{DecisionSystem, System};
use impossible_core::valence::{ValenceEngine, ValenceReport};
use std::collections::BTreeMap;

/// A reachable configuration graph: `order[i]` is state `i`, `succ[i]` its
/// `(action, target_index)` edges in action order.
#[derive(Debug, Clone)]
pub struct ReachableGraph<S, A> {
    /// States in discovery (BFS) order; initial states first.
    pub order: Vec<S>,
    /// Successor lists, indices into `order`.
    pub succ: Vec<Vec<(A, usize)>>,
    /// Number of (distinct, canonical) initial states: `order[..initials]`.
    /// The property checker's stem searches start here.
    pub initials: usize,
    /// The bound that tripped, if any (only `States` is possible here).
    pub truncated_by: Option<Truncation>,
}

impl<S, A> ReachableGraph<S, A> {
    /// Did the builder hit the state bound?
    pub fn truncated(&self) -> bool {
        self.truncated_by.is_some()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Number of edges (sum of successor-list lengths).
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// True when no state was reached (no initial states).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl<'a, Sys: System> Search<'a, Sys>
where
    Sys::State: Encode,
{
    /// Build the reachable graph (within `max_states`), dedup accelerated by
    /// fingerprint buckets with exact equality fallback.
    pub fn graph(&self) -> ReachableGraph<Sys::State, Sys::Action> {
        self.graph_filtered(|_| true)
    }

    /// All distinct reachable states (within `max_states`), sorted.
    pub fn reachable_states(&self) -> Vec<Sys::State> {
        let mut order = self.graph().order;
        order.sort();
        order
    }

    /// Reachable graph over the transitions whose action passes `keep` —
    /// e.g. the FLP non-termination engine drops actions owned by failed
    /// processes before hunting for bivalent cycles.
    pub fn graph_filtered<F>(&self, keep: F) -> ReachableGraph<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::Action) -> bool,
    {
        let sys = self.sys();
        let (max_states, max_depth) = self.bounds();
        let canon = self.canon_hook();
        let seed = self.seed_value();
        let canonize = |s: Sys::State| match canon {
            None => s,
            Some(c) => c(&s),
        };

        let mut order: Vec<Sys::State> = Vec::new();
        let mut succ: Vec<Vec<(Sys::Action, usize)>> = Vec::new();
        // First state index interned under each fingerprint. Indices are
        // `u32`: the graph stores full states, so memory runs out long
        // before 2³² of them. Genuine collisions (distinct states sharing a
        // fingerprint) chain into `spill`, which stays empty on honest
        // encodings.
        let mut first_by_fp: ShardedFpMap<u32> = ShardedFpMap::new(self.partitions_value());
        let mut spill: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut batch = BatchScratch::new(seed);
        let mut truncated_by: Option<Truncation> = None;

        // Look up the interned index of `sc` under `fp`, with exact
        // equality confirmation (a fingerprint match alone is never
        // trusted).
        macro_rules! lookup {
            ($fp:expr, $sc:expr) => {
                match first_by_fp.get($fp) {
                    None => None,
                    Some(&j0) if order[j0 as usize] == *$sc => Some(j0 as usize),
                    Some(_) => spill
                        .get(&$fp)
                        .and_then(|chain| {
                            chain.iter().copied().find(|&j| order[j as usize] == *$sc)
                        })
                        .map(|j| j as usize),
                }
            };
        }
        // Intern a known-new state as index `$j`. Evaluates to `false` —
        // without interning — when `$j` no longer fits the `u32` index
        // width: the caller records `Truncation::Index` and stops adding
        // states, instead of the old `as u32` silently wrapping the index
        // into a bogus (and aliased) slot.
        macro_rules! intern_new {
            ($fp:expr, $sc:expr, $j:expr) => {{
                match u32::try_from($j) {
                    Err(_) => false,
                    Ok(j32) => {
                        if first_by_fp.contains($fp) {
                            spill.entry($fp).or_default().push(j32);
                        } else {
                            let r = first_by_fp.try_insert_with($fp, Cap::Unbounded, || j32);
                            debug_assert_eq!(r, TryInsert::Inserted);
                        }
                        order.push($sc);
                        succ.push(Vec::new());
                        true
                    }
                }
            }};
        }

        for s0 in sys.initial_states() {
            let sc = canonize(s0);
            let fp = batch.fingerprint_one(&sc);
            if lookup!(fp, &sc).is_some() {
                continue;
            }
            let j = order.len();
            if !intern_new!(fp, sc, j) {
                truncated_by.get_or_insert(Truncation::Index);
                break;
            }
        }
        let initials = order.len();

        // FIFO discovery: indices are assigned in push order, so the queue
        // is just a cursor over `order` — identical traversal to the old
        // VecDeque builder, without cloning each state out of `order` to
        // expand it (children are staged in a reusable buffer instead, so
        // `order` is never grown while a state borrow is live).
        let mut children: Vec<(Sys::Action, Sys::State)> = Vec::new();
        let mut i = 0usize;
        // BFS level boundary: indices `[0, level_end)` are at most `depth`
        // steps from an initial state. FIFO order makes the boundary a
        // plain cursor — no per-state depth bookkeeping.
        let mut depth = 0usize;
        let mut level_end = order.len();
        while i < order.len() {
            if i == level_end {
                depth += 1;
                level_end = order.len();
            }
            if depth >= max_depth {
                // Depth cutoff, matching `Search::explore`: the remaining
                // states stay in the graph with empty successor lists, and
                // the truncation is flagged iff any of them still had kept
                // work to expand.
                if order[i..]
                    .iter()
                    .any(|s| sys.enabled(s).iter().any(|a| keep(a)))
                {
                    truncated_by.get_or_insert(Truncation::Depth);
                }
                break;
            }
            {
                let state = &order[i];
                for a in sys.enabled(state) {
                    if !keep(&a) {
                        continue;
                    }
                    let tc = canonize(sys.step(state, &a));
                    children.push((a, tc));
                }
            }
            // One batched fingerprint pass over the staged children — the
            // same hot-path shape as the fused search engine.
            let fps = batch.fingerprints(children.iter().map(|(_, tc)| tc));
            for ((a, tc), &fp) in children.drain(..).zip(fps) {
                let ti = match lookup!(fp, &tc) {
                    Some(j) => j,
                    None => {
                        if order.len() >= max_states {
                            truncated_by.get_or_insert(Truncation::States);
                            continue;
                        }
                        let j = order.len();
                        if !intern_new!(fp, tc, j) {
                            truncated_by.get_or_insert(Truncation::Index);
                            continue;
                        }
                        j
                    }
                };
                succ[i].push((a, ti));
            }
            i += 1;
        }

        ReachableGraph {
            order,
            succ,
            initials,
            truncated_by,
        }
    }
}

impl<'a, Sys: DecisionSystem> Search<'a, Sys>
where
    Sys::State: Encode,
{
    /// Valence-classify the reachable space: build the graph here, run the
    /// classification fixpoint through
    /// [`ValenceEngine::analyze_from_graph`]. Drop-in for
    /// `ValenceEngine::analyze` with the fast graph builder underneath.
    pub fn valence(&self) -> ValenceReport<Sys::State> {
        let g = self.graph();
        ValenceEngine::new(self.sys())
            .max_states(self.bounds().0)
            .analyze_from_graph(&g.order, &g.succ, g.truncated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FpHasher;
    use crate::grid::Grid;

    #[test]
    fn graph_matches_full_exploration() {
        let sys = Grid { n: 2, max: 3 };
        let g = Search::new(&sys).graph();
        let r = Search::new(&sys).explore();
        assert_eq!(g.len(), r.num_states);
        assert_eq!(
            g.succ.iter().map(Vec::len).sum::<usize>(),
            r.num_transitions
        );
        assert!(!g.truncated());
        // Initial state first, edges index-closed.
        assert_eq!(g.order[0], vec![0, 0]);
        assert!(g.succ.iter().flatten().all(|&(_, t)| t < g.len()));
    }

    #[test]
    fn graph_filtered_drops_edges_and_their_cone() {
        // Keep only counter-0 increments: a 1-dimensional chain remains.
        let sys = Grid { n: 2, max: 3 };
        let g = Search::new(&sys).graph_filtered(|a| *a == 0);
        assert_eq!(g.len(), 4);
        assert!(g.succ.iter().all(|es| es.len() <= 1));
    }

    #[test]
    fn graph_is_exact_even_under_total_fingerprint_collision() {
        // All states encode identically — every fingerprint collides. The
        // equality fallback must still produce the exact graph.
        struct Degenerate;
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        struct Blind(u8);
        // LINT-ALLOW: encode-coverage -- deliberately blind: the audit must fire
        impl Encode for Blind {
            fn encode(&self, _h: &mut FpHasher) {}
        }
        impl System for Degenerate {
            type State = Blind;
            type Action = u8;
            fn initial_states(&self) -> Vec<Blind> {
                vec![Blind(0)]
            }
            fn enabled(&self, s: &Blind) -> Vec<u8> {
                if s.0 < 9 {
                    vec![0]
                } else {
                    vec![]
                }
            }
            fn step(&self, s: &Blind, _a: &u8) -> Blind {
                Blind(s.0 + 1)
            }
        }
        let g = Search::new(&Degenerate).graph();
        assert_eq!(g.len(), 10);
        assert!(!g.truncated());
    }

    #[test]
    fn depth_bound_is_enforced_and_marked() {
        // Regression: the builder used to ignore `max_depth` entirely —
        // `.max_depth(3)` built the full space. A 1-D chain makes the
        // level structure exact: depth d reaches counter values 0..=d.
        let sys = Grid { n: 1, max: 100 };
        let g = Search::new(&sys).max_depth(3).graph();
        assert_eq!(g.len(), 4, "roots + 3 expanded levels");
        assert_eq!(g.truncated_by, Some(Truncation::Depth));
        // The cutoff level's states are present but unexpanded.
        assert!(g.succ[3].is_empty());
        // And the search engine agrees on the census at the same bound.
        let r = Search::new(&sys).max_depth(3).explore();
        assert_eq!(r.num_states, g.len());
        assert_eq!(r.truncated_by, g.truncated_by);
    }

    #[test]
    fn depth_bound_on_terminal_frontier_is_not_truncation() {
        // If the depth bound lands exactly on the space's own horizon —
        // every frontier state terminal — nothing was cut off.
        let sys = Grid { n: 1, max: 3 };
        let g = Search::new(&sys).max_depth(3).graph();
        assert_eq!(g.len(), 4);
        assert_eq!(g.truncated_by, None);
        // One level short, the same space *is* truncated.
        let g = Search::new(&sys).max_depth(2).graph();
        assert_eq!(g.truncated_by, Some(Truncation::Depth));
    }

    #[test]
    fn depth_bound_respects_filtered_actions() {
        // A state whose only enabled actions are filtered out is terminal
        // *in the filtered graph*: reaching it at the cutoff depth is not
        // truncation.
        let sys = Grid { n: 2, max: 2 };
        // Keep only counter-0 increments: chain (0,0)→(1,0)→(2,0), done.
        let g = Search::new(&sys).max_depth(2).graph_filtered(|a| *a == 0);
        assert_eq!(g.len(), 3);
        assert_eq!(g.truncated_by, None);
    }

    #[test]
    fn state_cap_marks_truncation() {
        let sys = Grid { n: 2, max: 50 };
        let g = Search::new(&sys).max_states(7).graph();
        assert_eq!(g.len(), 7);
        assert_eq!(g.truncated_by, Some(Truncation::States));
    }
}

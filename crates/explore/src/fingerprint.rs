//! Seeded 64-bit state fingerprints.
//!
//! The legacy `core::explore::Explorer` dedups by storing full cloned states
//! in a `BTreeMap` — every membership test walks a tree comparing whole
//! states, and every insert clones one. This module replaces that with a
//! *fingerprint visited-set*: each state is reduced to a 64-bit hash of a
//! canonical byte/word encoding, and the visited set stores only the hashes.
//!
//! Three deliberate design points:
//!
//! * **Derive-free.** [`Fingerprint`] has a blanket impl for every
//!   [`Encode`] type, and `Encode` is a tiny hand-written visitor over the
//!   state's structure — no `Ord`/`Hash` bounds, no derive machinery, no
//!   dependence on `std::hash`'s unstable-by-design hasher selection.
//! * **Seeded.** The hash is keyed by an explicit `seed` (mixed through
//!   [`impossible_det::rng::splitmix64`]), so a collision is not a fixed property
//!   of a state pair: re-running under a different seed (or under
//!   `DET_SEED`) re-randomizes the fingerprint function. Same seed → same
//!   fingerprints, bit for bit, on every platform.
//! * **Auditable.** Fingerprint equality is *assumed* to mean state equality
//!   (a 64-bit hash over ≤ a few million states has collision probability
//!   ≈ `n²/2⁶⁵`); the search engine's collision-audit mode keeps the full
//!   states alongside and panics on a genuine collision, which is how the
//!   test suite validates the policy on every engine's real state types.
//!
//! Encodings must be *prefix-unambiguous*: variable-length collections
//! write their length first, enums write a variant tag first. That makes
//! the map from state to word stream injective, so two distinct states
//! collide only if the hash itself collides.

use impossible_det::rng::splitmix64;

/// Streaming word hasher behind [`Fingerprint`].
///
/// Each absorbed word is mixed into the running state with one
/// `splitmix64` round; `finish` applies a final round so short encodings
/// are still well avalanched.
#[derive(Debug, Clone)]
pub struct FpHasher {
    h: u64,
}

impl FpHasher {
    /// A hasher keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        FpHasher {
            h: splitmix64(&mut s),
        }
    }

    /// Absorb one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        let mut s = self.h ^ word;
        self.h = splitmix64(&mut s);
    }

    /// Absorb a usize (as u64 — encodings are width-independent).
    #[inline]
    pub fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Absorb raw bytes, 8 per word, length included.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// The 64-bit fingerprint of everything absorbed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        let mut s = self.h;
        splitmix64(&mut s)
    }
}

/// A canonical, prefix-unambiguous word encoding of a value.
///
/// This is the only thing a state type must provide to participate in
/// fingerprint dedup. Implementations must be **total and injective** on the
/// type's reachable values: equal values produce equal streams, distinct
/// values produce distinct streams (given the length/tag prefixing rules in
/// the module docs). All primitive scalars, tuples, `Option`, `Vec`, slices,
/// arrays and the ordered collections are covered here; model crates add
/// impls for their own state structs/enums (see [`crate::impl_encode_enum!`]
/// for C-like and field-carrying enums).
pub trait Encode {
    /// Feed this value's canonical encoding to `h`.
    fn encode(&self, h: &mut FpHasher);

    /// [`Encode::encode`] with a reusable [`EncodeScratch`] available for
    /// byte staging. **Must absorb exactly the same words as
    /// [`Encode::encode`]** — the scratch changes where temporary bytes
    /// live, never what is hashed — so either path yields the same
    /// fingerprint. The default ignores the scratch (word-streaming
    /// encodings have nothing to stage); override it only when `encode`
    /// would otherwise build a temporary `Vec<u8>`/`String` per call, and
    /// route the staging through [`EncodeScratch::stage_bytes`].
    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        let _ = scratch;
        self.encode(h);
    }
}

/// Seeded 64-bit fingerprints — blanket-implemented for every [`Encode`]
/// type, never derived.
pub trait Fingerprint {
    /// The fingerprint of `self` under `seed`.
    fn fingerprint(&self, seed: u64) -> u64;

    /// [`Fingerprint::fingerprint`] through a reusable [`EncodeScratch`].
    ///
    /// Identical result, by contract — the scratch is purely an allocation
    /// vehicle. The search engine's hot loops hold one scratch per worker
    /// per level and route every fingerprint through it, so encodings that
    /// stage bytes pay one amortized buffer instead of a fresh `Vec<u8>`
    /// per state.
    fn fingerprint_with(&self, seed: u64, scratch: &mut EncodeScratch) -> u64;
}

impl<T: Encode + ?Sized> Fingerprint for T {
    fn fingerprint(&self, seed: u64) -> u64 {
        let mut h = FpHasher::new(seed);
        self.encode(&mut h);
        h.finish()
    }

    fn fingerprint_with(&self, seed: u64, scratch: &mut EncodeScratch) -> u64 {
        let mut h = FpHasher::new(seed);
        self.encode_scratch(&mut h, scratch);
        h.finish()
    }
}

/// A reusable byte-staging buffer for [`Encode::encode_scratch`].
///
/// Word-streaming encodings (everything in this module) never allocate, so
/// they ignore the scratch. Encodings that must *assemble* a byte string
/// before hashing — a serialized composite, a canonical text form — stage
/// it here via [`EncodeScratch::stage_bytes`] instead of allocating a fresh
/// `Vec<u8>` per state: the buffer is cleared, filled, hashed with the same
/// length-prefixed framing as [`FpHasher::write_bytes`], and its capacity
/// survives for the next state. Creating a scratch is allocation-free
/// (capacity grows only on first use), so hot loops can hold one per worker
/// per level at zero cost when no encoding stages.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    bytes: Vec<u8>,
}

impl EncodeScratch {
    /// An empty scratch (no allocation until first staged encoding).
    pub fn new() -> Self {
        EncodeScratch { bytes: Vec::new() }
    }

    /// Clear the buffer, let `fill` write the value's byte encoding into
    /// it, and absorb the result into `h` exactly as
    /// [`FpHasher::write_bytes`] would — so a staged encoding fingerprints
    /// identically to an unstaged `write_bytes` of the same bytes.
    ///
    /// The buffer is taken out of `self` while `fill` runs, so a nested
    /// `stage_bytes` inside `fill` starts from an empty (fresh) buffer
    /// rather than corrupting the outer staging.
    pub fn stage_bytes(&mut self, h: &mut FpHasher, fill: impl FnOnce(&mut Vec<u8>)) {
        let mut buf = std::mem::take(&mut self.bytes);
        buf.clear();
        fill(&mut buf);
        h.write_bytes(&buf);
        // Keep the larger buffer: if `fill` nested another staging, `self`
        // holds the inner one; retain whichever has more capacity.
        if buf.capacity() >= self.bytes.capacity() {
            self.bytes = buf;
        }
    }

    /// Current staging capacity in bytes (for tests asserting reuse).
    pub fn capacity(&self) -> usize {
        self.bytes.capacity()
    }
}

/// Batched encode→fingerprint pipeline: the seeded hasher initialization is
/// hoisted out of the per-state loop and a whole batch of successors is
/// fingerprinted back-to-back through one reused [`EncodeScratch`] and one
/// reused output buffer.
///
/// The search engine's hot loops collect a level's candidate successors
/// first and then run them through [`BatchScratch::fingerprints`] in a
/// tight loop — no per-state seed re-derivation, no per-state output
/// allocation, and a monomorphized loop body the compiler can keep in
/// registers. The contract is strict equivalence: every fingerprint
/// produced here is bit-identical to
/// [`Fingerprint::fingerprint_with`]`(seed, scratch)` on the same value
/// (pinned by this module's tests and the determinism suites), so batching
/// is purely a throughput change — never an observable one.
#[derive(Debug)]
pub struct BatchScratch {
    /// Hasher state after absorbing the seed, cloned per item — the
    /// `FpHasher::new(seed)` work done once per batch owner instead of once
    /// per state.
    h0: FpHasher,
    seed: u64,
    fps: Vec<u64>,
    scratch: EncodeScratch,
}

impl BatchScratch {
    /// A batch pipeline keyed by `seed` (allocation-free until first use).
    pub fn new(seed: u64) -> Self {
        BatchScratch {
            h0: FpHasher::new(seed),
            seed,
            fps: Vec::new(),
            scratch: EncodeScratch::new(),
        }
    }

    /// The seed this pipeline was keyed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fingerprint every item of `items` in iteration order, returning the
    /// fingerprints as a slice valid until the next call on this scratch.
    ///
    /// Each element is bit-identical to
    /// `item.fingerprint_with(self.seed(), scratch)` — cloning the
    /// seed-initialized hasher is exactly `FpHasher::new(seed)` by
    /// construction, and the staging buffer is the same reused
    /// [`EncodeScratch`] the scalar path uses.
    pub fn fingerprints<'a, T, I>(&mut self, items: I) -> &[u64]
    where
        T: Encode + ?Sized + 'a,
        I: IntoIterator<Item = &'a T>,
    {
        self.fps.clear();
        for item in items {
            let mut h = self.h0.clone();
            item.encode_scratch(&mut h, &mut self.scratch);
            self.fps.push(h.finish());
        }
        &self.fps
    }

    /// Fingerprint a single value through the batch pipeline (same
    /// equivalence contract as [`BatchScratch::fingerprints`]).
    pub fn fingerprint_one<T: Encode + ?Sized>(&mut self, item: &T) -> u64 {
        let mut h = self.h0.clone();
        item.encode_scratch(&mut h, &mut self.scratch);
        h.finish()
    }
}

macro_rules! encode_scalar {
    ($($ty:ty),+ $(,)?) => {$(
        impl Encode for $ty {
            #[inline]
            fn encode(&self, h: &mut FpHasher) {
                h.write_u64(*self as u64);
            }
        }
    )+};
}

encode_scalar!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char);

impl Encode for () {
    #[inline]
    fn encode(&self, _h: &mut FpHasher) {}
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, h: &mut FpHasher) {
        match self {
            None => h.write_u64(0),
            Some(x) => {
                h.write_u64(1);
                x.encode(h);
            }
        }
    }

    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        match self {
            None => h.write_u64(0),
            Some(x) => {
                h.write_u64(1);
                x.encode_scratch(h, scratch);
            }
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, h: &mut FpHasher) {
        h.write_usize(self.len());
        for x in self {
            x.encode(h);
        }
    }

    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        h.write_usize(self.len());
        for x in self {
            x.encode_scratch(h, scratch);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, h: &mut FpHasher) {
        self.as_slice().encode(h);
    }

    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        self.as_slice().encode_scratch(h, scratch);
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode(&self, h: &mut FpHasher) {
        self.as_slice().encode(h);
    }

    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        self.as_slice().encode_scratch(h, scratch);
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, h: &mut FpHasher) {
        (*self).encode(h);
    }

    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        (*self).encode_scratch(h, scratch);
    }
}

impl Encode for str {
    fn encode(&self, h: &mut FpHasher) {
        h.write_bytes(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, h: &mut FpHasher) {
        h.write_bytes(self.as_bytes());
    }
}

macro_rules! encode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, h: &mut FpHasher) {
                $(self.$idx.encode(h);)+
            }

            fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
                $(self.$idx.encode_scratch(h, scratch);)+
            }
        }
    };
}

encode_tuple!(A: 0);
encode_tuple!(A: 0, B: 1);
encode_tuple!(A: 0, B: 1, C: 2);
encode_tuple!(A: 0, B: 1, C: 2, D: 3);
encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<K: Encode, V: Encode> Encode for std::collections::BTreeMap<K, V> {
    fn encode(&self, h: &mut FpHasher) {
        h.write_usize(self.len());
        for (k, v) in self {
            k.encode(h);
            v.encode(h);
        }
    }

    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        h.write_usize(self.len());
        for (k, v) in self {
            k.encode_scratch(h, scratch);
            v.encode_scratch(h, scratch);
        }
    }
}

impl<T: Encode> Encode for std::collections::BTreeSet<T> {
    fn encode(&self, h: &mut FpHasher) {
        h.write_usize(self.len());
        for x in self {
            x.encode(h);
        }
    }

    fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
        h.write_usize(self.len());
        for x in self {
            x.encode_scratch(h, scratch);
        }
    }
}

impl Encode for impossible_core::ids::ProcessId {
    #[inline]
    fn encode(&self, h: &mut FpHasher) {
        h.write_usize(self.0);
    }
}

/// Implement [`Encode`] for an enum by listing every variant with an
/// explicit tag. Handles unit, struct and tuple variants; fields encode in
/// the listed order, after the tag. Tags need not be dense, only distinct.
///
/// ```
/// use impossible_explore::{impl_encode_enum, Fingerprint};
///
/// #[derive(Clone)]
/// enum Phase {
///     Idle,
///     Waiting { round: usize },
///     Done(u64),
/// }
/// impl_encode_enum!(Phase {
///     0: Idle,
///     1: Waiting { round },
///     2: Done(v),
/// });
///
/// assert_ne!(
///     Phase::Waiting { round: 3 }.fingerprint(7),
///     Phase::Done(3).fingerprint(7),
/// );
/// ```
#[macro_export]
macro_rules! impl_encode_enum {
    ($ty:ty { $($body:tt)* }) => {
        impl $crate::Encode for $ty {
            fn encode(&self, h: &mut $crate::FpHasher) {
                $crate::__encode_enum_variants!(self, h; $($body)*);
            }
        }
    };
}

/// Recursive helper for [`impl_encode_enum!`] — one `if let` per variant.
#[doc(hidden)]
#[macro_export]
macro_rules! __encode_enum_variants {
    ($s:expr, $h:expr; ) => {};
    ($s:expr, $h:expr; $tag:literal : $v:ident, $($rest:tt)*) => {
        if let Self::$v = $s {
            $h.write_u64($tag);
        }
        $crate::__encode_enum_variants!($s, $h; $($rest)*);
    };
    ($s:expr, $h:expr; $tag:literal : $v:ident { $($f:ident),+ $(,)? }, $($rest:tt)*) => {
        if let Self::$v { $($f),+ } = $s {
            $h.write_u64($tag);
            $($crate::Encode::encode($f, $h);)+
        }
        $crate::__encode_enum_variants!($s, $h; $($rest)*);
    };
    ($s:expr, $h:expr; $tag:literal : $v:ident ( $($f:ident),+ $(,)? ), $($rest:tt)*) => {
        if let Self::$v($($f),+) = $s {
            $h.write_u64($tag);
            $($crate::Encode::encode($f, $h);)+
        }
        $crate::__encode_enum_variants!($s, $h; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_value_same_seed_same_fingerprint() {
        let a = vec![1u8, 2, 3];
        assert_eq!(a.fingerprint(42), vec![1u8, 2, 3].fingerprint(42));
    }

    #[test]
    fn seed_changes_fingerprint() {
        let a = vec![1u8, 2, 3];
        assert_ne!(a.fingerprint(1), a.fingerprint(2));
    }

    #[test]
    fn length_prefix_disambiguates_adjacent_collections() {
        // Without length prefixes these would absorb identical streams.
        let a = (vec![1u64], vec![2u64, 3]);
        let b = (vec![1u64, 2], vec![3u64]);
        assert_ne!(a.fingerprint(0), b.fingerprint(0));
        let c: (Vec<u64>, Vec<u64>) = (vec![], vec![1]);
        let d: (Vec<u64>, Vec<u64>) = (vec![1], vec![]);
        assert_ne!(c.fingerprint(0), d.fingerprint(0));
    }

    #[test]
    fn option_tags_disambiguate() {
        assert_ne!(Some(0u64).fingerprint(9), None::<u64>.fingerprint(9));
        // Some(0) must differ from a bare 0 absorbed after a 1-tag of
        // something else — spot-check nested shapes.
        assert_ne!(
            (Some(0u64), 1u64).fingerprint(9),
            (None::<u64>, 1u64).fingerprint(9)
        );
    }

    #[test]
    fn byte_strings_roundtrip_length() {
        assert_ne!("ab".fingerprint(3), "ab\0".fingerprint(3));
        assert_ne!("".fingerprint(3), "\0".fingerprint(3));
    }

    #[test]
    fn no_collisions_over_a_dense_small_space() {
        // 4^6 = 4096 distinct states: a birthday bound of ~2^-41 per pair
        // means any collision here is a bug, not bad luck.
        let mut seen = std::collections::BTreeSet::new();
        for x in 0u64..4096 {
            let state: Vec<u64> = (0..6).map(|k| (x >> (2 * k)) & 3).collect();
            assert!(seen.insert(state.fingerprint(0xDEAD_BEEF)));
        }
    }

    #[derive(Clone)]
    enum Demo {
        A,
        B { x: usize, y: u64 },
        C(u8),
    }
    impl_encode_enum!(Demo {
        0: A,
        1: B { x, y },
        2: C(b),
    });

    /// An encoding that must assemble a byte string per value — the shape
    /// the scratch path exists for.
    struct Staged(Vec<u16>);
    impl Encode for Staged {
        fn encode(&self, h: &mut FpHasher) {
            // Unstaged: a fresh Vec<u8> per call.
            let mut bytes = Vec::new();
            for &v in &self.0 {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            h.write_bytes(&bytes);
        }

        fn encode_scratch(&self, h: &mut FpHasher, scratch: &mut EncodeScratch) {
            scratch.stage_bytes(h, |buf| {
                for &v in &self.0 {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            });
        }
    }

    #[test]
    fn scratch_path_fingerprints_identically_to_streaming() {
        let mut scratch = EncodeScratch::new();
        assert_eq!(scratch.capacity(), 0, "no allocation before first use");
        for n in 0..50u16 {
            let v = Staged((0..n).collect());
            assert_eq!(v.fingerprint(7), v.fingerprint_with(7, &mut scratch));
        }
        // Word-streaming types route through the same API unchanged.
        let plain = vec![1u8, 2, 3];
        assert_eq!(plain.fingerprint(7), plain.fingerprint_with(7, &mut scratch));
    }

    #[test]
    fn scratch_buffer_is_reused_not_reallocated() {
        let mut scratch = EncodeScratch::new();
        let big = Staged((0..512).collect());
        big.fingerprint_with(3, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap >= 1024, "staging grew the buffer once");
        // Hundreds of smaller states later the capacity is unchanged: the
        // buffer is reused, not reallocated per state.
        for n in 0..300u16 {
            Staged((0..n).collect()).fingerprint_with(3, &mut scratch);
        }
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn scratch_propagates_through_containers() {
        let mut scratch = EncodeScratch::new();
        let nested = vec![
            (Staged(vec![1, 2]), Some(Staged(vec![3]))),
            (Staged(vec![]), None),
        ];
        assert_eq!(
            nested.fingerprint(11),
            nested.fingerprint_with(11, &mut scratch),
        );
        assert!(scratch.capacity() > 0, "containers handed the scratch down");
    }

    #[test]
    fn batched_fingerprints_equal_the_scalar_path() {
        // The batch pipeline's strict-equivalence contract, over both a
        // staged encoding (exercises the shared EncodeScratch) and a
        // word-streaming one, across seeds.
        for seed in [0u64, 7, 0xdead_beef] {
            let staged: Vec<Staged> = (0..40u16).map(|n| Staged((0..n).collect())).collect();
            let mut batch = BatchScratch::new(seed);
            assert_eq!(batch.seed(), seed);
            let mut scratch = EncodeScratch::new();
            let scalar: Vec<u64> = staged
                .iter()
                .map(|v| v.fingerprint_with(seed, &mut scratch))
                .collect();
            assert_eq!(batch.fingerprints(staged.iter()), &scalar[..], "seed={seed}");

            let words: Vec<Vec<u8>> = (0..25u8).map(|n| (0..n).collect()).collect();
            let scalar: Vec<u64> = words.iter().map(|v| v.fingerprint(seed)).collect();
            assert_eq!(batch.fingerprints(words.iter()), &scalar[..], "seed={seed}");

            // Single-value convenience agrees too.
            assert_eq!(batch.fingerprint_one(&words[3]), scalar[3]);
        }
    }

    #[test]
    fn batch_buffers_are_reused_across_calls() {
        let mut batch = BatchScratch::new(3);
        let big: Vec<Staged> = (0..64).map(|_| Staged((0..512).collect())).collect();
        let _ = batch.fingerprints(big.iter());
        let cap = batch.scratch.capacity();
        assert!(cap >= 1024, "staging grew the shared buffer once");
        for n in 0..100u16 {
            let small = [Staged((0..n).collect())];
            let _ = batch.fingerprints(small.iter());
        }
        assert_eq!(batch.scratch.capacity(), cap, "scratch reused, not reallocated");
        assert!(batch.fps.capacity() >= 64, "output buffer capacity survives");
    }

    #[test]
    fn empty_batch_yields_empty_slice() {
        let mut batch = BatchScratch::new(9);
        let none: [u64; 0] = [];
        assert_eq!(batch.fingerprints(none.iter()), &[] as &[u64]);
    }

    #[test]
    fn enum_macro_covers_all_variant_shapes() {
        let fps = [
            Demo::A.fingerprint(5),
            Demo::B { x: 0, y: 0 }.fingerprint(5),
            Demo::C(0).fingerprint(5),
            Demo::B { x: 1, y: 0 }.fingerprint(5),
            Demo::B { x: 0, y: 1 }.fingerprint(5),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j]);
            }
        }
    }
}

//! The unified search engine: BFS shortest-witness and iterative-deepening
//! DFS behind one [`Search`] builder.
//!
//! # BFS (fingerprint dedup, deterministic parallel frontiers)
//!
//! The breadth-first engine is level-synchronized. Each level is
//! partitioned by `fingerprint % partitions` into a **fixed** number of
//! partitions (independent of the worker count), expanded by the
//! [`crate::pool::WorkerPool`], and the visited set is a
//! [`ShardedFpMap`] sharded by that *same* function — shard `k` holds
//! exactly the fingerprints partition `k` can produce next level, so the
//! worker that owns partition `k` also owns shard `k` and performs dedup +
//! insert locally, with no locks. The main thread only stitches per-shard
//! outputs in shard order: partition `k`'s next frontier *is* shard `k`'s
//! newly-inserted list, handed over without re-partitioning. Every name the
//! report can mention — discovery order, witness, terminal list, counters —
//! is derived from that fixed order, so the report is a pure function of
//! `(system, bounds, seed, canon, partitions)`: the worker count never
//! changes a byte of output (`tests/determinism.rs` pins this for 1/2/8
//! workers). See `docs/EXPLORE.md` ("Sharding & determinism") for the full
//! ordering argument, including why the state cap falls back to a
//! sequential replay on the (rare) levels where it could bind
//! ([`SearchStats::cap_fallbacks`] counts them).
//!
//! The visited set stores 64-bit fingerprints, not states (see
//! [`crate::fingerprint`] for the collision policy and
//! [`Search::collision_audit`] for the test-mode check). Witnesses are
//! reconstructed by walking a fingerprint-keyed parent map back to an
//! initial state and replaying the actions through [`System::step`].
//!
//! # Semantics vs. the legacy `Explorer`
//!
//! On a full (predicate-free, untruncated) exploration the report agrees
//! with [`impossible_core::explore::Explorer`] on `num_states`,
//! `num_transitions` and the terminal-state *set* (the order differs:
//! legacy emits queue order, this engine merge order). Predicate searches
//! agree on witness *length* (both are shortest) but may return a different
//! shortest witness; this engine checks the predicate over each completed
//! level (a post-level scan of the newly-inserted states, which is what
//! keeps the check worker-count invariant), so state/transition counts of
//! `search` runs are not comparable — legacy stops mid-level. The
//! cross-engine equivalence suite in `tests/explore_equivalence.rs` pins
//! all of this per model crate.
//!
//! # IDDFS (memory-bound runs)
//!
//! [`Search::search_iddfs`] holds only the current path (plus its
//! fingerprint set for cycle pruning), re-expanding prefixes instead of
//! remembering them — the classic memory/time trade. Depth limits iterate
//! `0..=max_depth`, so the first hit is still a shortest witness.

use crate::fingerprint::{BatchScratch, Encode, Fingerprint};
use crate::pool::WorkerPool;
use crate::stats::SearchStats;
use crate::table::{shard_index, Cap, FpMap, ShardedFpMap, TryInsert};
use impossible_core::exec::Execution;
use impossible_core::explore::Truncation;
use impossible_core::system::System;
use impossible_obs::{trace_event, NoopTracer, Tracer};
use std::collections::{BTreeMap, BTreeSet};

/// Trace field value for a truncation cause ("none" when unbounded).
fn truncation_name(t: &Option<Truncation>) -> &'static str {
    t.map_or("none", |t| t.name())
}

/// Default fingerprint seed (any fixed value works; overridable for
/// collision re-randomization and `DET_SEED` integration).
pub const DEFAULT_SEED: u64 = 0x5EED_FACE_0FDA_7A5E;

/// Default number of frontier partitions. Fixed (never derived from the
/// worker count) so reports are worker-count invariant; 64 keeps ≥ 8
/// partitions per worker at the maximum sensible pool size.
pub const DEFAULT_PARTITIONS: usize = 64;

/// Result of a [`Search`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchReport<S, A> {
    /// Distinct states visited (fingerprint-distinct; 0 for IDDFS, which
    /// keeps no visited set — see `stats.expansions`).
    pub num_states: usize,
    /// Transitions traversed.
    pub num_transitions: usize,
    /// States with no enabled action, in merge order (empty for IDDFS).
    pub terminal_states: Vec<S>,
    /// The first bound that tripped, if any.
    pub truncated_by: Option<Truncation>,
    /// Shortest execution to a predicate match, if one was found.
    pub witness: Option<Execution<S, A>>,
    /// Per-run counters (deterministic; JSON via [`SearchStats::to_json`]).
    pub stats: SearchStats,
}

impl<S, A> SearchReport<S, A> {
    /// Did exploration hit a bound before exhausting the space?
    pub fn truncated(&self) -> bool {
        self.truncated_by.is_some()
    }
}

/// Parent-map entry, keyed by child fingerprint. Public so the checkpoint
/// layer (`impossible-ckpt`) can persist the witness-replay chain; the
/// search engine itself only ever builds these through its insert paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parent<A> {
    /// `initial_states()[i]`.
    Root(usize),
    /// Reached from the state fingerprinted `parent` via `action`.
    Child { parent: u64, action: A },
}

/// Pause thresholds for [`Search::run_resumable`] / [`Search::resume`]: the
/// run suspends at the first **completed level** where either bound is met
/// (levels are the engine's atomic unit — pausing mid-level would make the
/// suspended state depend on worker scheduling). `usize::MAX` disables a
/// bound; [`PauseBudget::never`] never pauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauseBudget {
    /// Pause once at least this many states are visited.
    pub states: usize,
    /// Pause once this many levels are completed.
    pub levels: usize,
}

impl PauseBudget {
    /// Pause at the first level boundary with `n` or more visited states.
    pub fn states(n: usize) -> Self {
        PauseBudget {
            states: n,
            levels: usize::MAX,
        }
    }

    /// Pause after `n` completed levels.
    pub fn levels(n: usize) -> Self {
        PauseBudget {
            states: usize::MAX,
            levels: n,
        }
    }

    /// Run to completion (no pause).
    pub fn never() -> Self {
        PauseBudget {
            states: usize::MAX,
            levels: usize::MAX,
        }
    }
}

/// Outcome of a resumable run: either the finished report or a suspended
/// checkpoint that [`Search::resume`] (in this or a fresh process, via
/// `impossible-ckpt`'s snapshot format) continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resumable<S, A> {
    /// The run finished within the pause budget.
    Done(SearchReport<S, A>),
    /// The run suspended at a level boundary.
    Paused(SearchCheckpoint<S, A>),
}

impl<S, A> Resumable<S, A> {
    /// The finished report, if the run completed.
    pub fn done(self) -> Option<SearchReport<S, A>> {
        match self {
            Resumable::Done(r) => Some(r),
            Resumable::Paused(_) => None,
        }
    }

    /// The suspended checkpoint, if the run paused.
    pub fn paused(self) -> Option<SearchCheckpoint<S, A>> {
        match self {
            Resumable::Done(_) => None,
            Resumable::Paused(c) => Some(c),
        }
    }
}

/// A BFS run suspended at a level boundary: everything the level loop
/// carries between levels, in canonical (worker-count invariant) order.
///
/// * `visited[k]` is visited-set shard `k` in ascending stored-key order
///   (the canonical order [`FpMap::iter_ordered`] defines) — parent links
///   included, so witness replay survives the round trip;
/// * `frontier[k]` is frontier partition `k` in the exact in-partition
///   order the expansion left it (traversal order, which every worker
///   count reproduces);
/// * the counter fields are the [`SearchStats`] counters minus `workers`
///   (a resumed run reports the *resuming* pool's worker count, exactly as
///   an uninterrupted run would).
///
/// Two runs of the same `(system, bounds, seed, canon, partitions)` paused
/// at the same budget produce `==` checkpoints for any worker counts —
/// pinned by `tests/determinism.rs` and serialized byte-identically by
/// `impossible-ckpt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchCheckpoint<S, A> {
    /// Fingerprint seed of the suspended run.
    pub seed: u64,
    /// Partition/shard count of the suspended run.
    pub partitions: usize,
    /// Completed levels (the next level to expand).
    pub depth: usize,
    /// Transitions traversed so far.
    pub transitions: usize,
    /// The first bound that tripped, if any.
    pub truncated_by: Option<Truncation>,
    /// Visited-set pages: per shard, `(stored key, parent)` ascending by key.
    pub visited: Vec<Vec<(u64, Parent<A>)>>,
    /// Frontier partitions, in-partition order preserved.
    pub frontier: Vec<Vec<(u64, S)>>,
    /// Terminal states found so far, in merge order.
    pub terminal: Vec<S>,
    /// [`SearchStats::levels`] so far.
    pub levels: usize,
    /// [`SearchStats::expansions`] so far.
    pub expansions: usize,
    /// [`SearchStats::dedup_hits`] so far.
    pub dedup_hits: usize,
    /// [`SearchStats::canon_hits`] so far.
    pub canon_hits: usize,
    /// [`SearchStats::peak_frontier`] so far.
    pub peak_frontier: usize,
    /// [`SearchStats::cap_fallbacks`] so far.
    pub cap_fallbacks: usize,
    /// [`SearchStats::peak_bytes`] so far.
    pub peak_bytes: usize,
}

impl<S, A> SearchCheckpoint<S, A> {
    /// Distinct states visited at suspension.
    pub fn num_states(&self) -> usize {
        self.visited.iter().map(Vec::len).sum()
    }

    /// Frontier size at suspension.
    pub fn frontier_len(&self) -> usize {
        self.frontier.iter().map(Vec::len).sum()
    }
}

/// Builder/engine for fingerprint-deduped state-space search.
///
/// ```
/// use impossible_explore::{Grid, Search};
///
/// // 3×3 grid; shortest path to the far corner has 4 steps.
/// let sys = Grid { n: 2, max: 2 };
/// let report = Search::new(&sys).search(|s| s.iter().all(|&c| c == 2));
/// assert_eq!(report.witness.unwrap().len(), 4);
/// assert_eq!(report.stats.strategy, "bfs");
/// ```
pub struct Search<'a, Sys: System> {
    sys: &'a Sys,
    max_states: usize,
    max_depth: usize,
    workers: usize,
    partitions: usize,
    seed: u64,
    canon: Option<fn(&Sys::State) -> Sys::State>,
    audit: bool,
}

impl<'a, Sys: System> Search<'a, Sys> {
    /// A search with the legacy default bounds (1M states, depth 10k), one
    /// worker, and no canonicalization.
    pub fn new(sys: &'a Sys) -> Self {
        Search {
            sys,
            max_states: 1_000_000,
            max_depth: 10_000,
            workers: 1,
            partitions: DEFAULT_PARTITIONS,
            seed: DEFAULT_SEED,
            canon: None,
            audit: false,
        }
    }

    /// Cap the number of distinct states visited.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Cap the BFS depth / IDDFS deepening limit.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Expand frontiers on `w` threads (clamped to ≥ 1). Output-invariant:
    /// any worker count produces byte-identical reports.
    pub fn workers(mut self, w: usize) -> Self {
        self.workers = w.max(1);
        self
    }

    /// Override the fixed partition count (must be ≥ 1). Changing this *is*
    /// allowed to change discovery order (it redefines the merge order);
    /// the worker count never does.
    pub fn partitions(mut self, p: usize) -> Self {
        self.partitions = p.max(1);
        self
    }

    /// Re-key the fingerprint function.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a symmetry canonicalization hook (see [`crate::canon`] for
    /// the idempotence/equivariance contract). Applied to initial states and
    /// to every successor before fingerprinting.
    pub fn canon(mut self, c: fn(&Sys::State) -> Sys::State) -> Self {
        self.canon = c.into();
        self
    }

    /// Keep full states beside their fingerprints and panic if two distinct
    /// states ever share one — the collision-audit mode the test suite runs
    /// against every engine's real state types. Costs the memory the
    /// fingerprint set exists to avoid; not for production searches.
    pub fn collision_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    pub(crate) fn sys(&self) -> &'a Sys {
        self.sys
    }

    pub(crate) fn bounds(&self) -> (usize, usize) {
        (self.max_states, self.max_depth)
    }

    pub(crate) fn canon_hook(&self) -> Option<fn(&Sys::State) -> Sys::State> {
        self.canon
    }

    pub(crate) fn seed_value(&self) -> u64 {
        self.seed
    }

    pub(crate) fn partitions_value(&self) -> usize {
        self.partitions
    }

    pub(crate) fn workers_value(&self) -> usize {
        self.workers
    }

    pub(crate) fn audit_enabled(&self) -> bool {
        self.audit
    }

    /// Shallow byte width of one frontier record: the 8-byte fingerprint
    /// plus the state's stack footprint. Deliberately ignores heap payloads
    /// (a `Vec<u8>` state counts as its 24-byte header) — the accounting
    /// must be a pure function of the type and the record count, never of
    /// allocator behaviour, to keep `peak_bytes` deterministic.
    pub(crate) fn frontier_item_bytes() -> usize {
        8 + std::mem::size_of::<Sys::State>()
    }

    /// Canonicalize (if a hook is installed), counting orbit collapses.
    pub(crate) fn canonize(&self, s: Sys::State, hits: &mut usize) -> Sys::State {
        match self.canon {
            None => s,
            Some(c) => {
                let cs = c(&s);
                if cs != s {
                    *hits += 1;
                }
                cs
            }
        }
    }
}

/// Per-partition expansion record produced by pass-1 workers. Children come
/// back already bucketed by destination shard (`fp % partitions`), so pass 2
/// can hand bucket `k` of every partition straight to the worker that owns
/// visited-set shard `k` — the main thread never touches a child. The
/// external-memory engine ([`crate::extmem`]) reuses the same pass-1 records
/// for its probe/stage/commit pipeline.
pub(crate) struct Expanded<S, A> {
    /// Terminal states of this partition, in frontier order.
    pub(crate) terminals: Vec<S>,
    /// Frontier items expanded (`enabled` calls).
    pub(crate) expansions: usize,
    /// Successors changed by the canonicalization hook.
    pub(crate) canon_hits: usize,
    /// Total children produced (this partition's transition delta).
    pub(crate) children: usize,
    /// `(child fp, canonical child, action, parent fp)` bucketed by
    /// destination shard; in-bucket order is traversal order (frontier
    /// order, in-state action order).
    pub(crate) by_shard: Vec<Vec<(u64, S, A, u64)>>,
    /// Destination shard of each child in traversal order — lets the
    /// sequential cap fallback replay the exact global insert order from
    /// the bucketed layout.
    pub(crate) route: Vec<u32>,
}

/// In-flight BFS state: everything the level loop carries between levels.
/// One struct so the fused path (`run_bfs`), the resumable path
/// (`run_resumable`), the resumed path (`resume`) and the external-memory
/// loop (`crate::extmem`) share the *same* setup — any budget/truncation
/// fix lands on all of them at once.
pub(crate) struct BfsRun<Sys: System> {
    pub(crate) stats: SearchStats,
    pub(crate) visited: ShardedFpMap<Parent<Sys::Action>>,
    pub(crate) audit_states: BTreeMap<u64, Sys::State>,
    pub(crate) terminal: Vec<Sys::State>,
    pub(crate) transitions: usize,
    pub(crate) truncated_by: Option<Truncation>,
    pub(crate) found: Option<u64>,
    /// Frontier, pre-partitioned: `parts[k]` holds the states whose
    /// fingerprints shard to `k`.
    pub(crate) parts: Vec<Vec<(u64, Sys::State)>>,
    /// Completed levels (the next level to expand).
    pub(crate) depth: usize,
    /// Batched fingerprint pipeline shared by the sequential control path
    /// and the fused level loop (rebuilt fresh on restore — it is a
    /// buffer, never state).
    pub(crate) batch: BatchScratch,
}

impl<'a, Sys: System> Search<'a, Sys>
where
    Sys: Sync,
    Sys::State: Encode + Send + Sync,
    Sys::Action: Send + Sync,
{
    /// Explore the full reachable space (within bounds), no predicate.
    pub fn explore(&self) -> SearchReport<Sys::State, Sys::Action> {
        self.explore_traced(&mut NoopTracer)
    }

    /// [`Search::explore`], recording trace events into `tracer` (scope
    /// `"search"`). The trace is a pure function of
    /// `(system, bounds, seed, canon, partitions)` — the worker count never
    /// changes a byte (`tests/trace_determinism.rs` pins this).
    pub fn explore_traced(
        &self,
        tracer: &mut dyn Tracer,
    ) -> SearchReport<Sys::State, Sys::Action> {
        self.run_bfs(None::<fn(&Sys::State) -> bool>, tracer)
    }

    /// BFS until `pred` matches; `witness` is a shortest execution from an
    /// initial state to a matching state.
    pub fn search<F>(&self, pred: F) -> SearchReport<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::State) -> bool,
    {
        self.search_traced(pred, &mut NoopTracer)
    }

    /// [`Search::search`], recording trace events into `tracer` (scope
    /// `"search"`); same determinism contract as [`Search::explore_traced`].
    pub fn search_traced<F>(
        &self,
        pred: F,
        tracer: &mut dyn Tracer,
    ) -> SearchReport<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::State) -> bool,
    {
        self.run_bfs(Some(pred), tracer)
    }

    /// Run the full reachable exploration, pausing at `budget` if it trips
    /// first. The suspended checkpoint continues — in this process via
    /// [`Search::resume`], or in a fresh one via `impossible-ckpt`'s
    /// snapshot format — and the eventual [`SearchReport`] is byte-identical
    /// to an uninterrupted [`Search::explore`] at any worker count on
    /// either side of the pause (the level loop is literally the same code;
    /// `tests/determinism.rs` pins the equality). Exploration only
    /// (no predicate: a paused run has no `found` state by construction)
    /// and incompatible with [`Search::collision_audit`].
    pub fn run_resumable(
        &self,
        budget: PauseBudget,
    ) -> Resumable<Sys::State, Sys::Action> {
        self.run_resumable_traced(budget, &mut NoopTracer)
    }

    /// [`Search::run_resumable`], recording trace events into `tracer`
    /// (scope `"search"`); a pause emits one final `pause` event.
    pub fn run_resumable_traced(
        &self,
        budget: PauseBudget,
        tracer: &mut dyn Tracer,
    ) -> Resumable<Sys::State, Sys::Action> {
        assert!(!self.audit, "collision audit is not resumable");
        let pool = WorkerPool::new(self.workers);
        let mut run = self.bfs_init(&pool, None::<&fn(&Sys::State) -> bool>, tracer);
        if self.bfs_levels(
            &pool,
            &mut run,
            None::<&fn(&Sys::State) -> bool>,
            &budget,
            tracer,
        ) {
            Resumable::Paused(self.suspend(run))
        } else {
            Resumable::Done(self.bfs_finish(run, tracer))
        }
    }

    /// Continue a paused run (possibly under a different worker count —
    /// the report never depends on it) until done or `budget` trips again.
    /// The builder must carry the same `(system, bounds, seed, canon,
    /// partitions)` the checkpoint was taken under; seed/partition drift is
    /// detected here, model drift by `impossible-ckpt`'s fingerprint check.
    pub fn resume(
        &self,
        ckpt: SearchCheckpoint<Sys::State, Sys::Action>,
        budget: PauseBudget,
    ) -> Resumable<Sys::State, Sys::Action> {
        self.resume_traced(ckpt, budget, &mut NoopTracer)
    }

    /// [`Search::resume`], recording trace events into `tracer` (scope
    /// `"search"`): a fresh `start` event, one `resume` event with the
    /// restored position, then the usual level events.
    pub fn resume_traced(
        &self,
        ckpt: SearchCheckpoint<Sys::State, Sys::Action>,
        budget: PauseBudget,
        tracer: &mut dyn Tracer,
    ) -> Resumable<Sys::State, Sys::Action> {
        assert!(!self.audit, "collision audit is not resumable");
        let pool = WorkerPool::new(self.workers);
        trace_event!(tracer, "search", "start",
            "strategy": "bfs",
            "partitions": self.partitions,
            "seed": self.seed,
            "max_states": self.max_states,
            "max_depth": self.max_depth,
            "canon": self.canon.is_some(),
        );
        let run = self.restore(&pool, ckpt);
        trace_event!(tracer, "search", "resume",
            "level": run.depth,
            "states": run.visited.len(),
            "frontier": run.parts.iter().map(Vec::len).sum::<usize>(),
            "transitions": run.transitions,
        );
        let mut run = run;
        if self.bfs_levels(
            &pool,
            &mut run,
            None::<&fn(&Sys::State) -> bool>,
            &budget,
            tracer,
        ) {
            Resumable::Paused(self.suspend(run))
        } else {
            Resumable::Done(self.bfs_finish(run, tracer))
        }
    }

    /// The BFS engine. Trace emissions happen only on the sequential
    /// control path (init loop, level boundaries, and the ordered merge) —
    /// never inside worker closures — and no event carries the worker
    /// count, which is what makes traces worker-count invariant.
    fn run_bfs<F>(
        &self,
        pred: Option<F>,
        tracer: &mut dyn Tracer,
    ) -> SearchReport<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::State) -> bool,
    {
        let pool = WorkerPool::new(self.workers);
        let mut run = self.bfs_init(&pool, pred.as_ref(), tracer);
        let paused = self.bfs_levels(&pool, &mut run, pred.as_ref(), &PauseBudget::never(), tracer);
        debug_assert!(!paused, "PauseBudget::never cannot pause");
        self.bfs_finish(run, tracer)
    }

    /// BFS init: seed the visited set and the partitioned root frontier.
    pub(crate) fn bfs_init<F>(
        &self,
        pool: &WorkerPool,
        pred: Option<&F>,
        tracer: &mut dyn Tracer,
    ) -> BfsRun<Sys>
    where
        F: Fn(&Sys::State) -> bool,
    {
        let mut stats = SearchStats::new("bfs", pool.workers(), self.partitions, self.seed);
        let mut visited: ShardedFpMap<Parent<Sys::Action>> = ShardedFpMap::new(self.partitions);
        let mut audit_states: BTreeMap<u64, Sys::State> = BTreeMap::new();
        let mut truncated_by: Option<Truncation> = None;
        let mut found: Option<u64> = None;
        // Batched fingerprint pipeline for this (sequential) control path
        // and the fused level loop; parallel expansions carry their own
        // (one per partition-expansion, reused across all of its states).
        let mut batch = BatchScratch::new(self.seed);
        let mut roots: Vec<(u64, Sys::State)> = Vec::new();

        trace_event!(tracer, "search", "start",
            "strategy": "bfs",
            "partitions": self.partitions,
            "seed": self.seed,
            "max_states": self.max_states,
            "max_depth": self.max_depth,
            "canon": self.canon.is_some(),
        );

        for (i, s0) in self.sys.initial_states().into_iter().enumerate() {
            if visited.len() >= self.max_states {
                if truncated_by.is_none() {
                    trace_event!(tracer, "search", "truncate", "cause": "states", "level": 0usize);
                }
                truncated_by.get_or_insert(Truncation::States);
                break;
            }
            let sc = self.canonize(s0, &mut stats.canon_hits);
            let fp = batch.fingerprint_one(&sc);
            // The explicit length check above is the cap here, so the
            // insert itself is unbounded.
            if visited.try_insert_with(fp, Cap::Unbounded, || Parent::Root(i)) == TryInsert::Present
            {
                stats.dedup_hits += 1;
                self.audit_check(&audit_states, fp, &sc);
                continue;
            }
            if self.audit {
                audit_states.insert(fp, sc.clone());
            }
            if found.is_none() && pred.is_some_and(|p| p(&sc)) {
                found = Some(fp);
            }
            roots.push((fp, sc));
        }

        // The initial frontier is a real frontier: record it before the
        // level loop so `peak_frontier` is never 0 on runs where the loop
        // body is skipped (predicate matched an initial state, or the space
        // has no initial states to expand).
        stats.peak_frontier = stats.peak_frontier.max(roots.len());
        stats.peak_bytes = stats
            .peak_bytes
            .max(visited.approx_bytes() + roots.len() * Self::frontier_item_bytes());
        trace_event!(tracer, "search", "init",
            "frontier": roots.len(),
            "states": visited.len(),
            "dedup": stats.dedup_hits,
        );
        if let Some(fp) = found {
            trace_event!(tracer, "search", "found", "depth": 0usize, "fp": fp);
        }

        // The frontier lives pre-partitioned: `parts[k]` holds the states
        // whose fingerprints shard to `k`. After the first level this comes
        // for free — partition `k`'s next frontier *is* visited shard `k`'s
        // newly-inserted list — so only the roots are partitioned here.
        let mut parts: Vec<Vec<(u64, Sys::State)>> =
            (0..self.partitions).map(|_| Vec::new()).collect();
        for item in roots {
            let k = shard_index(item.0, self.partitions);
            parts[k].push(item);
        }

        BfsRun {
            stats,
            visited,
            audit_states,
            terminal: Vec::new(),
            transitions: 0,
            truncated_by,
            found,
            parts,
            depth: 0,
            batch,
        }
    }

    /// The level loop, shared verbatim by the fused, resumable and resumed
    /// paths. Returns `true` when the pause budget tripped at a level
    /// boundary (never mid-level) with the run still having work to do —
    /// the caller suspends; `false` means the run finished (witness found,
    /// frontier exhausted, or depth cutoff), which `PauseBudget::never`
    /// guarantees.
    fn bfs_levels<F>(
        &self,
        pool: &WorkerPool,
        run: &mut BfsRun<Sys>,
        pred: Option<&F>,
        pause: &PauseBudget,
        tracer: &mut dyn Tracer,
    ) -> bool
    where
        F: Fn(&Sys::State) -> bool,
    {
        loop {
            let frontier_len: usize = run.parts.iter().map(Vec::len).sum();
            if run.found.is_some() || frontier_len == 0 {
                return false;
            }
            // Pause check first: a resumed run re-enters here with the
            // pre-pause frontier, so every per-level update below (peak
            // sampling included) still happens exactly once per level.
            if run.visited.len() >= pause.states || run.depth >= pause.levels {
                trace_event!(tracer, "search", "pause",
                    "level": run.depth,
                    "states": run.visited.len(),
                    "frontier": frontier_len,
                );
                return true;
            }
            run.stats.peak_frontier = run.stats.peak_frontier.max(frontier_len);
            // Byte accounting, sampled at the same boundary: visited-table
            // slot arrays plus the current frontier at its shallow record
            // width. Worker-count-invariant (both are pure functions of the
            // entry sets); the extmem loop samples the same formula, so a
            // spilled run's lower number is comparable evidence.
            run.stats.peak_bytes = run.stats.peak_bytes.max(
                run.visited.approx_bytes() + frontier_len * Self::frontier_item_bytes(),
            );
            if run.depth >= self.max_depth {
                // Cutoff level: record terminals, flag unexpanded work.
                // (Shard-major traversal — the only loop left that sees a
                // whole frontier.)
                trace_event!(tracer, "search", "cutoff",
                    "level": run.depth,
                    "frontier": frontier_len,
                );
                for part in &run.parts {
                    for (_, s) in part {
                        run.stats.expansions += 1;
                        if self.sys.enabled(s).is_empty() {
                            run.terminal.push(s.clone());
                        } else {
                            if run.truncated_by.is_none() {
                                trace_event!(tracer, "search", "truncate",
                                    "cause": "depth",
                                    "level": run.depth,
                                );
                            }
                            run.truncated_by.get_or_insert(Truncation::Depth);
                        }
                    }
                }
                return false;
            }
            trace_event!(tracer, "search", "level.enter",
                "level": run.depth,
                "frontier": frontier_len,
            );

            run.stats.levels += 1;
            let visited_before = run.visited.len();
            let mut next_parts: Vec<Vec<(u64, Sys::State)>> =
                (0..self.partitions).map(|_| Vec::new()).collect();

            // Each level body lives in its own function (not inlined here):
            // the expand loops are the hottest code in the crate, and giving
            // them their own functions keeps the optimizer's inlining budget
            // focused on `fingerprint_with`/`try_insert_with` instead of
            // exhausting it on the orchestration around them.
            let (level_children, trans_delta) = if pool.workers() == 1 {
                self.expand_level_fused(
                    run.depth,
                    &run.parts,
                    &mut run.visited,
                    &mut run.batch,
                    &mut run.audit_states,
                    &mut next_parts,
                    &mut run.terminal,
                    &mut run.stats,
                    &mut run.truncated_by,
                    tracer,
                )
            } else {
                self.expand_level_parallel(
                    run.depth,
                    pool,
                    &run.parts,
                    &mut run.visited,
                    &mut run.audit_states,
                    &mut next_parts,
                    &mut run.terminal,
                    &mut run.stats,
                    &mut run.truncated_by,
                    tracer,
                )
            };
            run.transitions += trans_delta;
            // Fold the pool's steal counters into the stats at the level
            // boundary. Deterministic at a fixed worker count (each pass
            // over n items steals exactly n - min(workers, n) shards — see
            // `pool`); the fused single-worker path uses no pool, so both
            // stay 0 at workers == 1.
            let (steal_passes, stolen) = pool.take_steals();
            run.stats.steals += steal_passes as usize;
            run.stats.stolen_shards += stolen as usize;
            // Worker-invariant by construction: both counters are pure
            // functions of the state space and bounds, never of the
            // schedule or of which insert path ran.
            if visited_before + level_children > self.max_states {
                run.stats.cap_fallbacks += 1;
            }

            // Predicate scan over the level's newly-inserted states, in
            // shard-major order. Running it here (not inside the insert
            // paths) is what makes `found` identical for every worker
            // count; the cost is that a matching level is always completed
            // before the search stops.
            if let Some(p) = pred {
                'scan: for bucket in &next_parts {
                    for (fp, s) in bucket {
                        if p(s) {
                            run.found = Some(*fp);
                            trace_event!(tracer, "search", "found",
                                "depth": run.depth + 1,
                                "fp": *fp,
                            );
                            break 'scan;
                        }
                    }
                }
            }

            let next_len: usize = next_parts.iter().map(Vec::len).sum();
            run.parts = next_parts;
            trace_event!(tracer, "search", "level.exit",
                "level": run.depth,
                "next": next_len,
                "states": run.visited.len(),
                "transitions": run.transitions,
                "dedup": run.stats.dedup_hits,
                "canon": run.stats.canon_hits,
                "terminals": run.terminal.len(),
            );
            run.depth += 1;
        }
    }

    /// Finish a run: the `end` event, witness replay, and the report.
    fn bfs_finish(
        &self,
        run: BfsRun<Sys>,
        tracer: &mut dyn Tracer,
    ) -> SearchReport<Sys::State, Sys::Action> {
        trace_event!(tracer, "search", "end",
            "states": run.visited.len(),
            "transitions": run.transitions,
            "levels": run.stats.levels,
            "expansions": run.stats.expansions,
            "peak_frontier": run.stats.peak_frontier,
            "truncated": truncation_name(&run.truncated_by),
            "witness": run.found.is_some(),
        );

        let witness = run
            .found
            .map(|target| self.replay_witness(&run.visited, target));

        SearchReport {
            num_states: run.visited.len(),
            num_transitions: run.transitions,
            terminal_states: run.terminal,
            truncated_by: run.truncated_by,
            witness,
            stats: run.stats,
        }
    }

    /// Package a paused run as a checkpoint, in canonical order: visited
    /// shards page out via [`FpMap::iter_ordered`] (ascending stored key),
    /// frontier partitions keep their in-partition traversal order.
    fn suspend(&self, run: BfsRun<Sys>) -> SearchCheckpoint<Sys::State, Sys::Action> {
        debug_assert!(run.found.is_none(), "paused runs carry no witness");
        let visited = run
            .visited
            .shards()
            .iter()
            .map(|shard| {
                shard
                    .iter_ordered()
                    .map(|(k, v)| (k, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        SearchCheckpoint {
            seed: self.seed,
            partitions: self.partitions,
            depth: run.depth,
            transitions: run.transitions,
            truncated_by: run.truncated_by,
            visited,
            frontier: run.parts,
            terminal: run.terminal,
            levels: run.stats.levels,
            expansions: run.stats.expansions,
            dedup_hits: run.stats.dedup_hits,
            canon_hits: run.stats.canon_hits,
            peak_frontier: run.stats.peak_frontier,
            cap_fallbacks: run.stats.cap_fallbacks,
            peak_bytes: run.stats.peak_bytes,
        }
    }

    /// Rebuild in-flight state from a checkpoint. Stored keys are already
    /// folded (fingerprint `0` → `1`) and the fold is idempotent, so
    /// re-inserting them shard-locally reproduces the exact table contents;
    /// `workers` in the restored stats is the *resuming* pool's count,
    /// matching what an uninterrupted run under that pool would record.
    fn restore(
        &self,
        pool: &WorkerPool,
        ckpt: SearchCheckpoint<Sys::State, Sys::Action>,
    ) -> BfsRun<Sys> {
        assert_eq!(ckpt.seed, self.seed, "checkpoint seed mismatch");
        assert_eq!(
            ckpt.partitions, self.partitions,
            "checkpoint partition-count mismatch"
        );
        assert_eq!(
            ckpt.visited.len(),
            self.partitions,
            "checkpoint shard-page count mismatch"
        );
        assert_eq!(
            ckpt.frontier.len(),
            self.partitions,
            "checkpoint frontier-partition count mismatch"
        );
        let mut stats = SearchStats::new("bfs", pool.workers(), self.partitions, self.seed);
        stats.levels = ckpt.levels;
        stats.expansions = ckpt.expansions;
        stats.dedup_hits = ckpt.dedup_hits;
        stats.canon_hits = ckpt.canon_hits;
        stats.peak_frontier = ckpt.peak_frontier;
        stats.cap_fallbacks = ckpt.cap_fallbacks;
        stats.peak_bytes = ckpt.peak_bytes;
        // Steal counters are not persisted (the checkpoint stays a pure
        // function of the space, worker-count-invariant); re-derive them
        // as if the completed prefix had run at the *resuming* pool's
        // width, matching what an uninterrupted run under that pool would
        // record. Every completed level ran two pool passes of exactly
        // `partitions` items (expand + shard insert) except cap-fallback
        // levels, whose insert replays sequentially — and a pass over n
        // items at width w steals n - min(w, n) of them (see `pool`).
        let w = pool.workers();
        if w > 1 {
            let stolen_per_pass = self.partitions - w.min(self.partitions);
            if stolen_per_pass > 0 {
                let passes = 2 * ckpt.levels - ckpt.cap_fallbacks;
                stats.steals = passes;
                stats.stolen_shards = passes * stolen_per_pass;
            }
        }

        let mut visited: ShardedFpMap<Parent<Sys::Action>> = ShardedFpMap::new(self.partitions);
        for (k, page) in ckpt.visited.into_iter().enumerate() {
            let shard = &mut visited.shards_mut()[k];
            for (key, parent) in page {
                let r = shard.try_insert_with(key, Cap::Unbounded, || parent);
                assert_eq!(r, TryInsert::Inserted, "duplicate key in checkpoint page");
            }
        }
        visited.refresh_len();

        BfsRun {
            stats,
            visited,
            audit_states: BTreeMap::new(),
            terminal: ckpt.terminal,
            transitions: ckpt.transitions,
            truncated_by: ckpt.truncated_by,
            found: None,
            parts: ckpt.frontier,
            depth: ckpt.depth,
            batch: BatchScratch::new(self.seed),
        }
    }

    /// One BFS level, single worker: fused expand + dedup + insert in one
    /// pass. This is the reference traversal — partition order,
    /// in-partition frontier order, in-state action order ("j-major"), cap
    /// checked inline per child — that [`Search::expand_level_parallel`] is
    /// extensionally equal to. Returns the level's `(children, transitions)`
    /// deltas.
    ///
    /// Deliberately its own function (as is the parallel body): the expand
    /// loop is the hottest code in the crate, and carving it out of
    /// `run_bfs` gives it a private inlining budget — measured on the
    /// 117k-state grid, leaving it inline cost ~25% wall-clock because the
    /// surrounding function's size pushed `fingerprint_with`/
    /// `try_insert_with` out of line.
    #[allow(clippy::too_many_arguments)]
    fn expand_level_fused(
        &self,
        depth: usize,
        parts: &[Vec<(u64, Sys::State)>],
        visited: &mut ShardedFpMap<Parent<Sys::Action>>,
        batch: &mut BatchScratch,
        audit_states: &mut BTreeMap<u64, Sys::State>,
        next_parts: &mut [Vec<(u64, Sys::State)>],
        terminal: &mut Vec<Sys::State>,
        stats: &mut SearchStats,
        truncated_by: &mut Option<Truncation>,
        tracer: &mut dyn Tracer,
    ) -> (usize, usize) {
        // Audit on/off are separate monomorphizations: with `AUDIT = false`
        // the compiler erases every audit branch *and* the calls they guard
        // from the loop. This is not cosmetic — leaving even a never-taken
        // cold call in the dedup arm measurably deoptimizes the whole loop
        // (~25% wall-clock on the 117k-state grid).
        if self.audit {
            self.expand_level_fused_impl::<true>(
                depth,
                parts,
                visited,
                batch,
                audit_states,
                next_parts,
                terminal,
                stats,
                truncated_by,
                tracer,
            )
        } else {
            self.expand_level_fused_impl::<false>(
                depth,
                parts,
                visited,
                batch,
                audit_states,
                next_parts,
                terminal,
                stats,
                truncated_by,
                tracer,
            )
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(never)]
    fn expand_level_fused_impl<const AUDIT: bool>(
        &self,
        depth: usize,
        parts: &[Vec<(u64, Sys::State)>],
        visited: &mut ShardedFpMap<Parent<Sys::Action>>,
        batch: &mut BatchScratch,
        audit_states: &mut BTreeMap<u64, Sys::State>,
        next_parts: &mut [Vec<(u64, Sys::State)>],
        terminal: &mut Vec<Sys::State>,
        stats: &mut SearchStats,
        truncated_by: &mut Option<Truncation>,
        tracer: &mut dyn Tracer,
    ) -> (usize, usize) {
        let sys = self.sys;
        let canon = self.canon;
        let cap = Cap::At(self.max_states);
        let nparts = self.partitions;
        let mut level_children = 0usize;
        let mut transitions = 0usize;
        let mut expansions = 0usize;
        let mut dedup_hits = 0usize;
        let mut canon_hits = 0usize;
        // Per-partition staging for the batched fingerprint phase:
        // `(canonical child, action, parent fp)` in generation order. The
        // buffer is reused across the level's partitions.
        let mut pending: Vec<(Sys::State, Sys::Action, u64)> = Vec::new();
        for part in parts {
            // Phase A — generate this partition's children in the j-major
            // reference order (frontier order, in-state action order).
            // Terminals and children land in separate streams, each keeping
            // its own order, so splitting the phases reorders nothing.
            for (pfp, s) in part {
                expansions += 1;
                let acts = sys.enabled(s);
                if acts.is_empty() {
                    terminal.push(s.clone());
                    continue;
                }
                for a in acts {
                    let t = sys.step(s, &a);
                    let tc = match canon {
                        None => t,
                        Some(c) => {
                            let cs = c(&t);
                            if cs != t {
                                canon_hits += 1;
                            }
                            cs
                        }
                    };
                    level_children += 1;
                    transitions += 1;
                    pending.push((tc, a, *pfp));
                }
            }
            // Phase B — fingerprint the whole batch in one tight loop
            // (bit-identical to the scalar path per the BatchScratch
            // contract).
            let fps = batch.fingerprints(pending.iter().map(|(tc, _, _)| tc));
            // Phase C — dedup + insert, same j-major order, cap checked
            // inline per child exactly as the fused loop always has.
            for ((tc, a, pfp), &fp_t) in pending.drain(..).zip(fps) {
                match visited.try_insert_with(fp_t, cap, || {
                    Parent::Child { parent: pfp, action: a }
                }) {
                    TryInsert::Present => {
                        dedup_hits += 1;
                        if AUDIT {
                            self.audit_check_slow(audit_states, fp_t, &tc);
                        }
                    }
                    TryInsert::Full => {
                        if truncated_by.is_none() {
                            trace_event!(tracer, "search", "truncate",
                                "cause": "states",
                                "level": depth,
                            );
                        }
                        truncated_by.get_or_insert(Truncation::States);
                    }
                    TryInsert::Inserted => {
                        if AUDIT {
                            audit_states.insert(fp_t, tc.clone());
                        }
                        let k = shard_index(fp_t, nparts);
                        next_parts[k].push((fp_t, tc));
                    }
                }
            }
        }
        stats.expansions += expansions;
        stats.dedup_hits += dedup_hits;
        stats.canon_hits += canon_hits;
        (level_children, transitions)
    }

    /// Pass 1 of a parallel level: expand every frontier partition on the
    /// pool (successors, canon, fingerprints, bucketed by destination
    /// shard), touching no shared state. Records come back in partition
    /// order regardless of worker count. Shared by
    /// [`Search::expand_level_parallel`] and the external-memory engine —
    /// both downstream consumers are extensionally equal to the fused
    /// reference traversal because the records preserve traversal order
    /// (`route` recovers the exact j-major sequence).
    pub(crate) fn expand_pass1(
        &self,
        pool: &WorkerPool,
        parts: &[Vec<(u64, Sys::State)>],
    ) -> Vec<Expanded<Sys::State, Sys::Action>> {
        pool.map_each_partition(parts, |part: &[(u64, Sys::State)]| {
            self.expand_one_partition(part)
        })
    }

    /// Expand one frontier partition (the pass-1 worker body): successors,
    /// canon, fingerprints, children bucketed by destination shard. Pure —
    /// touches no shared state — so the spilled-frontier path can decode a
    /// partition page inside a worker and feed it straight through here.
    pub(crate) fn expand_one_partition(
        &self,
        part: &[(u64, Sys::State)],
    ) -> Expanded<Sys::State, Sys::Action> {
        let sys = self.sys;
        let canon = self.canon;
        let seed = self.seed;
        let shard_n = self.partitions;
        let mut rec = Expanded {
            terminals: Vec::new(),
            expansions: 0,
            canon_hits: 0,
            children: 0,
            by_shard: (0..shard_n).map(|_| Vec::new()).collect(),
            route: Vec::new(),
        };
        // One batch pipeline per partition-expansion (i.e. worker-local):
        // the seeded hasher init and the staging buffers are shared by
        // every state the partition fingerprints.
        let mut batch = BatchScratch::new(seed);
        // Phase A — generate the partition's children in traversal order
        // (frontier order, in-state action order), staged for the batch.
        let mut pending: Vec<(Sys::State, Sys::Action, u64)> = Vec::new();
        for (pfp, s) in part {
            rec.expansions += 1;
            let acts = sys.enabled(s);
            if acts.is_empty() {
                rec.terminals.push(s.clone());
                continue;
            }
            for a in acts {
                let t = sys.step(s, &a);
                let tc = match canon {
                    None => t,
                    Some(c) => {
                        let tc = c(&t);
                        if tc != t {
                            rec.canon_hits += 1;
                        }
                        tc
                    }
                };
                pending.push((tc, a, *pfp));
            }
        }
        // Phase B — fingerprint the batch in one tight loop (bit-identical
        // to the scalar path per the BatchScratch contract).
        let fps = batch.fingerprints(pending.iter().map(|(tc, _, _)| tc));
        // Phase C — bucket by destination shard in the same traversal
        // order, recording the route so cap levels can replay it exactly.
        for ((tc, a, pfp), &fp) in pending.into_iter().zip(fps) {
            let k = shard_index(fp, shard_n);
            rec.by_shard[k].push((fp, tc, a, pfp));
            rec.route.push(k as u32);
            rec.children += 1;
        }
        rec
    }

    /// One BFS level on `pool` workers: pass 1 expands partitions in
    /// parallel (children come back bucketed by destination shard), the
    /// counters/terminals are stitched sequentially in partition order, and
    /// pass 2 runs dedup + insert worker-locally per shard — or replays the
    /// exact j-major order sequentially on the rare levels where the state
    /// cap could bind (or under the collision audit). Returns the level's
    /// `(children, transitions)` deltas; byte-identical in effect to
    /// [`Search::expand_level_fused`] for every worker count.
    #[allow(clippy::too_many_arguments)]
    #[inline(never)]
    fn expand_level_parallel(
        &self,
        depth: usize,
        pool: &WorkerPool,
        parts: &[Vec<(u64, Sys::State)>],
        visited: &mut ShardedFpMap<Parent<Sys::Action>>,
        audit_states: &mut BTreeMap<u64, Sys::State>,
        next_parts: &mut [Vec<(u64, Sys::State)>],
        terminal: &mut Vec<Sys::State>,
        stats: &mut SearchStats,
        truncated_by: &mut Option<Truncation>,
        tracer: &mut dyn Tracer,
    ) -> (usize, usize) {
        let visited_before = visited.len();
        let mut level_children = 0usize;
        let mut transitions = 0usize;
        let shard_n = self.partitions;
        let mut recs = self.expand_pass1(pool, parts);

        // Stitch the per-partition counters and terminals, in
        // partition order.
        for rec in &mut recs {
            stats.expansions += rec.expansions;
            stats.canon_hits += rec.canon_hits;
            level_children += rec.children;
            terminal.append(&mut rec.terminals);
        }

        // Pass 2 — dedup + insert. When the state cap cannot bind
        // this level (children are an upper bound on inserts) and no
        // audit wants full states in sequence, each visited shard is
        // handed to the worker that owns it: worker-local,
        // lock-free, schedule-independent (shard `k`'s children
        // arrive grouped j-major, exactly the order the fused path
        // would have offered them — see docs/EXPLORE.md for why the
        // two traversals insert identical parent links).
        if visited_before + level_children <= self.max_states && !self.audit {
            transitions += level_children;
            // Transpose [partition][shard] → [shard][partition]:
            // O(partitions²) Vec moves, no child copied.
            let mut per_shard: Vec<Vec<Vec<(u64, Sys::State, Sys::Action, u64)>>> =
                (0..shard_n).map(|_| Vec::with_capacity(recs.len())).collect();
            for rec in &mut recs {
                for (k, bucket) in rec.by_shard.iter_mut().enumerate() {
                    per_shard[k].push(std::mem::take(bucket));
                }
            }
            type ShardJob<'s, S, A> =
                (&'s mut FpMap<Parent<A>>, Vec<Vec<(u64, S, A, u64)>>);
            let jobs: Vec<ShardJob<'_, Sys::State, Sys::Action>> =
                visited.shards_mut().iter_mut().zip(per_shard).collect();
            let results = pool.map_indexed(jobs, |_, (shard, groups)| {
                let mut fresh: Vec<(u64, Sys::State)> = Vec::new();
                let mut dedup = 0usize;
                for group in groups {
                    for (fp, tc, a, parent) in group {
                        match shard.try_insert_with(fp, Cap::Unbounded, || {
                            Parent::Child { parent, action: a }
                        }) {
                            TryInsert::Present => dedup += 1,
                            TryInsert::Inserted => fresh.push((fp, tc)),
                            TryInsert::Full => {
                                unreachable!("unbounded insert cannot refuse")
                            }
                        }
                    }
                }
                (fresh, dedup)
            });
            visited.refresh_len();
            for (k, (fresh, dedup)) in results.into_iter().enumerate() {
                stats.dedup_hits += dedup;
                next_parts[k] = fresh;
            }
        } else {
            // Cap could bind (or audit mode): replay the children in
            // exact j-major order with the same inline global cap
            // the fused path applies. `route` recovers that order
            // from the bucketed layout.
            for rec in recs {
                let mut buckets: Vec<std::vec::IntoIter<_>> =
                    rec.by_shard.into_iter().map(Vec::into_iter).collect();
                for &k in &rec.route {
                    let (fp_t, tc, a, parent) = buckets[k as usize]
                        .next()
                        .expect("route covers every bucketed child");
                    transitions += 1;
                    match visited.try_insert_with(fp_t, Cap::At(self.max_states), || {
                        Parent::Child { parent, action: a }
                    }) {
                        TryInsert::Present => {
                            stats.dedup_hits += 1;
                            self.audit_check(&audit_states, fp_t, &tc);
                        }
                        TryInsert::Full => {
                            if truncated_by.is_none() {
                                trace_event!(tracer, "search", "truncate",
                                    "cause": "states",
                                    "level": depth,
                                );
                            }
                            truncated_by.get_or_insert(Truncation::States);
                        }
                        TryInsert::Inserted => {
                            if self.audit {
                                audit_states.insert(fp_t, tc.clone());
                            }
                            next_parts[k as usize].push((fp_t, tc));
                        }
                    }
                }
            }
        }
        (level_children, transitions)
    }

    /// Walk the fingerprint parent map back to a root, then replay forward
    /// through `step` (+ canon) to materialize the actual states.
    fn replay_witness(
        &self,
        visited: &ShardedFpMap<Parent<Sys::Action>>,
        target: u64,
    ) -> Execution<Sys::State, Sys::Action> {
        self.replay_witness_with(target, |fp| visited.get(fp).cloned())
    }

    /// [`Search::replay_witness`] with a pluggable parent lookup, so the
    /// external-memory engine ([`crate::extmem`]) can resolve links that
    /// were spilled to run files through the same replay path.
    pub(crate) fn replay_witness_with(
        &self,
        target: u64,
        lookup: impl Fn(u64) -> Option<Parent<Sys::Action>>,
    ) -> Execution<Sys::State, Sys::Action> {
        let mut rev_actions: Vec<Sys::Action> = Vec::new();
        let mut cur = target;
        let root = loop {
            match lookup(cur).expect("parent chain intact") {
                Parent::Root(i) => break i,
                Parent::Child { parent, action } => {
                    rev_actions.push(action);
                    cur = parent;
                }
            }
        };
        rev_actions.reverse();
        let init = self
            .sys
            .initial_states()
            .into_iter()
            .nth(root)
            .expect("root index valid");
        let mut sink = 0usize;
        let mut exec = Execution::start(self.canonize(init, &mut sink));
        for a in rev_actions {
            let t = self.sys.step(exec.last(), &a);
            let tc = self.canonize(t, &mut sink);
            exec.push(a, tc);
        }
        exec
    }

    /// Per-dedup-hit collision audit. The wrapper must stay trivially
    /// inlinable: it runs on *every* dedup hit (the majority of children on
    /// dense spaces), and routing non-audit runs through an out-of-line call
    /// whose assert/format body defeats inlining costs ~25% of total search
    /// wall-clock (measured on the 117k-state grid).
    #[inline(always)]
    fn audit_check(&self, audit_states: &BTreeMap<u64, Sys::State>, fp: u64, state: &Sys::State) {
        if self.audit {
            self.audit_check_slow(audit_states, fp, state);
        }
    }

    #[cold]
    #[inline(never)]
    fn audit_check_slow(
        &self,
        audit_states: &BTreeMap<u64, Sys::State>,
        fp: u64,
        state: &Sys::State,
    ) {
        let prev = audit_states.get(&fp).expect("audit map tracks visited");
        assert!(
            prev == state,
            "fingerprint collision under seed {:#x}: fp {:#x} covers two distinct states\n  {:?}\n  {:?}\nre-run with a different .seed(...)",
            self.seed,
            fp,
            prev,
            state,
        );
    }
}

impl<'a, Sys: System> Search<'a, Sys>
where
    Sys::State: Encode,
{
    /// Iterative-deepening DFS until `pred` matches. Memory is O(longest
    /// path); the first hit is still a shortest witness (limits iterate
    /// `0..=max_depth`, and path-cycle pruning never prunes a shortest
    /// path). Single-threaded; `max_states` does not apply.
    pub fn search_iddfs<F>(&self, pred: F) -> SearchReport<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::State) -> bool,
    {
        self.search_iddfs_traced(pred, &mut NoopTracer)
    }

    /// [`Search::search_iddfs`], recording trace events into `tracer`
    /// (scope `"search"`): one `limit.enter`/`limit.exit` span per
    /// deepening pass, plus `found`/`truncate`/`end`.
    pub fn search_iddfs_traced<F>(
        &self,
        pred: F,
        tracer: &mut dyn Tracer,
    ) -> SearchReport<Sys::State, Sys::Action>
    where
        F: Fn(&Sys::State) -> bool,
    {
        let mut stats = SearchStats::new("iddfs", 1, self.partitions, self.seed);
        let mut truncated_by: Option<Truncation> = None;
        let mut witness: Option<Execution<Sys::State, Sys::Action>> = None;
        let mut transitions = 0usize;

        trace_event!(tracer, "search", "start",
            "strategy": "iddfs",
            "partitions": self.partitions,
            "seed": self.seed,
            "max_states": self.max_states,
            "max_depth": self.max_depth,
            "canon": self.canon.is_some(),
        );

        'deepen: for limit in 0..=self.max_depth {
            trace_event!(tracer, "search", "limit.enter", "limit": limit);
            let mut cutoff = false;
            for s0 in self.sys.initial_states() {
                let sc = self.canonize(s0, &mut stats.canon_hits);
                if let Some(exec) = self.depth_limited(
                    sc,
                    limit,
                    &pred,
                    &mut stats,
                    &mut transitions,
                    &mut cutoff,
                ) {
                    trace_event!(tracer, "search", "found",
                        "depth": exec.len(),
                        "limit": limit,
                    );
                    witness = Some(exec);
                    break 'deepen;
                }
            }
            stats.levels = limit;
            trace_event!(tracer, "search", "limit.exit",
                "limit": limit,
                "expansions": stats.expansions,
                "transitions": transitions,
                "cutoff": cutoff,
            );
            if !cutoff {
                // Space exhausted below the limit: deepening cannot help.
                break;
            }
            if limit == self.max_depth {
                trace_event!(tracer, "search", "truncate",
                    "cause": "depth",
                    "level": limit,
                );
                truncated_by = Some(Truncation::Depth);
            }
        }
        trace_event!(tracer, "search", "end",
            "states": 0usize,
            "transitions": transitions,
            "levels": stats.levels,
            "expansions": stats.expansions,
            "peak_frontier": stats.peak_frontier,
            "truncated": truncation_name(&truncated_by),
            "witness": witness.is_some(),
        );

        SearchReport {
            num_states: 0,
            num_transitions: transitions,
            terminal_states: Vec::new(),
            truncated_by,
            witness,
            stats,
        }
    }

    /// One depth-limited DFS from `root`. Returns the path to the first
    /// match (in deterministic child order), setting `cutoff` if any node
    /// at the limit still had enabled actions.
    #[allow(clippy::too_many_arguments)]
    fn depth_limited<F>(
        &self,
        root: Sys::State,
        limit: usize,
        pred: &F,
        stats: &mut SearchStats,
        transitions: &mut usize,
        cutoff: &mut bool,
    ) -> Option<Execution<Sys::State, Sys::Action>>
    where
        F: Fn(&Sys::State) -> bool,
    {
        if pred(&root) {
            return Some(Execution::start(root));
        }
        let root_fp = root.fingerprint(self.seed);
        let mut path_states: Vec<Sys::State> = vec![root];
        let mut path_actions: Vec<Sys::Action> = Vec::new();
        let mut path_fps: BTreeSet<u64> = BTreeSet::new();
        path_fps.insert(root_fp);
        let mut path_fp_stack: Vec<u64> = vec![root_fp];
        // Per-depth pending children, popped from the back (children are
        // pushed reversed so expansion follows action order).
        let mut frames: Vec<Vec<(Sys::Action, Sys::State, u64)>> = Vec::new();

        // Expand the root.
        let mut first = self.expand_for_dfs(&path_states[0], limit, 0, stats, cutoff);
        first.reverse();
        frames.push(first);

        while let Some(frame) = frames.last_mut() {
            match frame.pop() {
                None => {
                    frames.pop();
                    if frames.is_empty() {
                        break;
                    }
                    path_states.pop();
                    path_actions.pop();
                    let fp = path_fp_stack.pop().expect("fp stack aligned");
                    path_fps.remove(&fp);
                }
                Some((a, t, fp)) => {
                    *transitions += 1;
                    if path_fps.contains(&fp) {
                        // On-path cycle: pruning it cannot lose a shortest
                        // witness (shortest paths are simple).
                        stats.dedup_hits += 1;
                        continue;
                    }
                    path_actions.push(a);
                    path_states.push(t);
                    path_fps.insert(fp);
                    path_fp_stack.push(fp);
                    stats.peak_frontier = stats.peak_frontier.max(path_states.len());
                    let depth = path_actions.len();
                    let cur = path_states.last().expect("nonempty path");
                    if pred(cur) {
                        return Some(Execution::from_parts(path_states, path_actions));
                    }
                    let mut kids = self.expand_for_dfs(cur, limit, depth, stats, cutoff);
                    kids.reverse();
                    frames.push(kids);
                }
            }
        }
        None
    }

    /// Children of `s` for depth-limited DFS, or empty at the cutoff.
    fn expand_for_dfs(
        &self,
        s: &Sys::State,
        limit: usize,
        depth: usize,
        stats: &mut SearchStats,
        cutoff: &mut bool,
    ) -> Vec<(Sys::Action, Sys::State, u64)> {
        stats.expansions += 1;
        let acts = self.sys.enabled(s);
        if depth >= limit {
            if !acts.is_empty() {
                *cutoff = true;
            }
            return Vec::new();
        }
        acts.into_iter()
            .map(|a| {
                let t = self.sys.step(s, &a);
                let tc = self.canonize(t, &mut stats.canon_hits);
                let fp = tc.fingerprint(self.seed);
                (a, tc, fp)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use impossible_core::explore::Explorer;

    #[test]
    fn explores_full_space_like_legacy() {
        let sys = Grid { n: 2, max: 2 };
        let r = Search::new(&sys).explore();
        let legacy = Explorer::new(&sys).explore();
        assert_eq!(r.num_states, 9);
        assert_eq!(r.num_states, legacy.num_states);
        assert_eq!(r.num_transitions, legacy.num_transitions);
        assert_eq!(r.truncated_by, None);
        assert_eq!(r.terminal_states, vec![vec![2, 2]]);
        assert_eq!(r.stats.levels, 5); // depths 0..=4 all expand
        assert!(r.stats.dedup_hits > 0); // the grid is full of diamonds
    }

    #[test]
    fn search_finds_shortest_witness() {
        let sys = Grid { n: 2, max: 5 };
        let r = Search::new(&sys).search(|s| s[0] == 2 && s[1] == 1);
        let w = r.witness.expect("target reachable");
        assert_eq!(w.len(), 3);
        assert_eq!(*w.last(), vec![2, 1]);
        assert_eq!(*w.first(), vec![0, 0]);
    }

    #[test]
    fn state_bound_truncates_exactly() {
        let sys = Grid { n: 2, max: 100 };
        let r = Search::new(&sys).max_states(10).explore();
        assert_eq!(r.truncated_by, Some(Truncation::States));
        assert_eq!(r.num_states, 10);
    }

    #[test]
    fn depth_bound_truncates() {
        let sys = Grid { n: 1, max: 100 };
        let r = Search::new(&sys).max_depth(3).explore();
        assert_eq!(r.truncated_by, Some(Truncation::Depth));
        assert_eq!(r.num_states, 4);
    }

    #[test]
    fn unreachable_predicate_yields_no_witness() {
        let sys = Grid { n: 2, max: 2 };
        let r = Search::new(&sys).search(|s| s[0] == 99);
        assert!(r.witness.is_none());
        assert!(!r.truncated());
        assert_eq!(r.num_states, 9);
    }

    #[test]
    fn initial_state_match_gives_empty_witness() {
        let sys = Grid { n: 2, max: 2 };
        let r = Search::new(&sys).search(|s| s == &vec![0, 0]);
        assert_eq!(r.witness.expect("initial matches").len(), 0);
    }

    #[test]
    fn peak_frontier_counts_the_initial_frontier() {
        // Regression: a predicate matching an initial state used to leave
        // peak_frontier at 0 — the level loop (where the peak was sampled)
        // never ran. The initial frontier is a real frontier.
        let sys = Grid { n: 2, max: 2 };
        let r = Search::new(&sys).search(|s| s == &vec![0, 0]);
        assert_eq!(r.stats.peak_frontier, 1);
        // Untruncated full explores are unaffected: the peak still comes
        // from the widest expanded level, not the roots.
        let full = Search::new(&sys).explore();
        assert!(full.stats.peak_frontier > 1);
    }

    #[test]
    fn collision_audit_passes_on_honest_encodings() {
        let sys = Grid { n: 3, max: 3 };
        let r = Search::new(&sys).collision_audit(true).explore();
        assert_eq!(r.num_states, 64);
    }

    #[test]
    fn collision_audit_catches_a_lying_encoding() {
        // A system whose states all encode identically: the audit must trip.
        struct Degenerate;
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        struct Blind(u8);
        // LINT-ALLOW: encode-coverage -- deliberately blind: the audit must fire
        impl Encode for Blind {
            fn encode(&self, _h: &mut crate::fingerprint::FpHasher) {}
        }
        impl System for Degenerate {
            type State = Blind;
            type Action = u8;
            fn initial_states(&self) -> Vec<Blind> {
                vec![Blind(0)]
            }
            fn enabled(&self, s: &Blind) -> Vec<u8> {
                if s.0 < 2 {
                    vec![0]
                } else {
                    vec![]
                }
            }
            fn step(&self, s: &Blind, _a: &u8) -> Blind {
                Blind(s.0 + 1)
            }
        }
        let caught = std::panic::catch_unwind(|| {
            Search::new(&Degenerate).collision_audit(true).explore()
        });
        assert!(caught.is_err(), "collision audit failed to trip");
    }

    #[test]
    fn iddfs_matches_bfs_witness_length() {
        let sys = Grid { n: 2, max: 4 };
        let target = |s: &Vec<u8>| s[0] == 3 && s[1] == 2;
        let bfs = Search::new(&sys).search(target);
        let iddfs = Search::new(&sys).search_iddfs(target);
        assert_eq!(iddfs.stats.strategy, "iddfs");
        assert_eq!(
            iddfs.witness.expect("found").len(),
            bfs.witness.expect("found").len(),
        );
    }

    #[test]
    fn iddfs_exhausts_without_truncation_on_finite_space() {
        let sys = Grid { n: 2, max: 2 };
        let r = Search::new(&sys).search_iddfs(|s| s[0] == 99);
        assert!(r.witness.is_none());
        assert_eq!(r.truncated_by, None);
    }

    #[test]
    fn iddfs_reports_depth_truncation() {
        let sys = Grid { n: 1, max: 100 };
        let r = Search::new(&sys).max_depth(3).search_iddfs(|s| s[0] == 50);
        assert!(r.witness.is_none());
        assert_eq!(r.truncated_by, Some(Truncation::Depth));
    }

    #[test]
    fn canon_quotients_the_space() {
        // Sorting the counter vector = full-permutation canonicalization
        // for the (symmetric) grid: 2 counters to max 3 → 16 raw states,
        // 10 sorted multisets.
        fn sort_canon(s: &Vec<u8>) -> Vec<u8> {
            let mut t = s.clone();
            t.sort();
            t
        }
        let sys = Grid { n: 2, max: 3 };
        let plain = Search::new(&sys).explore();
        let quotient = Search::new(&sys).canon(sort_canon).explore();
        assert_eq!(plain.num_states, 16);
        assert_eq!(quotient.num_states, 10);
        assert!(quotient.stats.canon_hits > 0);
        // Witnesses in the quotient are executions of the quotient system.
        let w = Search::new(&sys)
            .canon(sort_canon)
            .search(|s| s == &vec![3, 3])
            .witness
            .expect("reachable");
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn seed_changes_fingerprints_not_results() {
        let sys = Grid { n: 3, max: 2 };
        let a = Search::new(&sys).seed(1).explore();
        let b = Search::new(&sys).seed(2).explore();
        assert_eq!(a.num_states, b.num_states);
        assert_eq!(a.num_transitions, b.num_transitions);
        let mut ta = a.terminal_states.clone();
        let mut tb = b.terminal_states.clone();
        ta.sort();
        tb.sort();
        assert_eq!(ta, tb);
    }
}

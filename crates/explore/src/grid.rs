//! A tunable synthetic [`System`] for benchmarks and engine tests.
//!
//! `n` independent counters, each incrementable to `max`: exactly
//! `(max+1)^n` reachable states, one terminal state (all saturated), and a
//! dense diamond structure that stresses the visited set — every interior
//! state is reachable along many paths, so dedup throughput dominates.
//! This is the public sibling of `core`'s test-only `Counters` system; the
//! `BENCH_5.json` speedup baseline uses `Grid { n: 6, max: 6 }` (117,649
//! states).

use impossible_core::system::System;

/// `n` counters over `0..=max`; action `i` increments counter `i`.
#[derive(Debug, Clone, Copy)]
pub struct Grid {
    /// Number of counters.
    pub n: usize,
    /// Saturation value per counter.
    pub max: u8,
}

impl System for Grid {
    type State = Vec<u8>;
    type Action = usize;

    fn initial_states(&self) -> Vec<Vec<u8>> {
        vec![vec![0; self.n]]
    }

    fn enabled(&self, s: &Vec<u8>) -> Vec<usize> {
        (0..self.n).filter(|&i| s[i] < self.max).collect()
    }

    fn step(&self, s: &Vec<u8>, a: &usize) -> Vec<u8> {
        let mut t = s.clone();
        t[*a] += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Search;

    #[test]
    fn state_count_is_exact() {
        let r = Search::new(&Grid { n: 3, max: 4 }).explore();
        assert_eq!(r.num_states, 125);
        assert_eq!(r.terminal_states.len(), 1);
    }
}

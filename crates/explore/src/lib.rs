//! # impossible-explore
//!
//! The workspace's state-space search subsystem. Every impossibility engine
//! here bottoms out in "exhaustively cover the reachable configuration
//! graph of a small instance" — valence classification (FLP, Figures 2–3),
//! mutex safety/deadlock/lockout checking, synthesis refutation, election
//! symmetry search. This crate makes that coverage cheap without giving up
//! the determinism discipline the repo is built on:
//!
//! * [`fingerprint`] — seeded 64-bit fingerprint visited-sets over a
//!   derive-free byte/word [`Encode`] trait, with a full-state
//!   collision-audit mode for tests and a reusable [`EncodeScratch`]
//!   buffer for encodings that stage bytes;
//! * [`canon`] — symmetry canonicalization hooks (plug
//!   [`impossible_core::symmetry`]'s permutation machinery into the visited
//!   set so each orbit is explored once);
//! * [`pool`] — the deterministic fork-join worker pool: fixed
//!   fingerprint-partitioned frontiers, fixed index→worker ownership,
//!   results merged in item order, so reports are byte-identical for any
//!   worker count;
//! * [`search`] — the unified [`Search`] API: BFS shortest-witness and
//!   iterative-deepening DFS, with per-run counters exported as
//!   deterministic JSON ([`SearchStats`]);
//! * [`table`] — the open-addressing fingerprint tables behind the visited
//!   set: flat [`FpMap`] and [`ShardedFpMap`], sharded by the same
//!   `fp % partitions` function that splits frontiers, so workers dedup and
//!   insert into the shards they own without locks;
//! * [`graph`] — the exact fingerprint-accelerated reachable-graph builder
//!   feeding `ValenceEngine::analyze_from_graph` and the product-space
//!   engines;
//! * [`persist`] — the reversible little-endian [`Persist`] byte codec
//!   (moved here from `impossible-ckpt` so snapshots and spill share one
//!   format), plus [`page`] — delta+varint-compressed key/run/frontier
//!   pages;
//! * [`extmem`] — external-memory BFS: a [`SpillPolicy`] writes cold
//!   visited shards (and optionally frontier partitions) to deterministic
//!   per-shard run files and streams them back per level, keeping reports
//!   byte-identical to the resident engine while peak memory stays
//!   bounded;
//! * [`property`] — the temporal-property layer over that graph:
//!   [`always`](property::always) / [`never`](property::never) safety
//!   checks as reachability, [`eventually`](property::eventually) /
//!   [`leads_to`](property::leads_to) liveness checks as deterministic
//!   Tarjan SCC lasso detection, with admissibility and fairness
//!   constraints on the repeatable cycle;
//! * [`grid`] — a tunable synthetic system for benchmarks and the
//!   cross-engine equivalence suite.
//!
//! The legacy [`impossible_core::explore::Explorer`] remains as the simple
//! reference engine; `tests/explore_equivalence.rs` (workspace root) pins
//! agreement between the two on a system from every model crate. See
//! `docs/EXPLORE.md` for the architecture and the determinism argument.

pub mod canon;
pub mod extmem;
pub mod fingerprint;
pub mod graph;
pub mod grid;
pub mod page;
pub mod persist;
pub mod pool;
pub mod property;
pub mod search;
pub mod stats;
pub mod table;

pub use extmem::SpillPolicy;
pub use fingerprint::{BatchScratch, Encode, EncodeScratch, Fingerprint, FpHasher};
pub use persist::{Persist, PersistError};
pub use graph::ReachableGraph;
pub use grid::Grid;
pub use pool::WorkerPool;
pub use property::{Checker, Counterexample, Lasso, Property, PropertyReport};
pub use search::{
    Parent, PauseBudget, Resumable, Search, SearchCheckpoint, SearchReport, DEFAULT_PARTITIONS,
    DEFAULT_SEED,
};
pub use stats::SearchStats;
pub use table::{Cap, FpMap, ShardedFpMap};

// Re-export so downstream code can name the truncation cause without also
// depending on `impossible-core` explicitly.
pub use impossible_core::explore::Truncation;

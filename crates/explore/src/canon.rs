//! Symmetry canonicalization hooks.
//!
//! Most of the paper's models are symmetric: anonymous ring configurations
//! are indistinguishable under rotation, two-process protocols running the
//! same code are indistinguishable under a process swap, and in general any
//! automorphism of the system maps reachable states to reachable states.
//! Exploring one representative per orbit shrinks the search by up to the
//! orbit size — the search-side counterpart of the Angluin/fixed-point
//! symmetry arguments in [`impossible_core::symmetry`].
//!
//! A canonicalization hook is a plain function pointer
//! `fn(&S) -> S` installed with [`crate::Search::canon`]. Fn *pointers*
//! rather than closures on purpose: they are `Copy + Sync`, trivially
//! shareable with the worker pool, and cannot smuggle in ambient state —
//! the hook must be a pure function of the state, or determinism and
//! soundness both die. The hook must be
//!
//! * **idempotent**: `c(c(s)) == c(s)`, and
//! * **orbit-respecting**: `c(s) == c(t)` exactly when `s` and `t` are
//!   related by a system automorphism (equivariance: the enabled actions
//!   and successors of `c(s)` mirror those of `s`).
//!
//! Under those two conditions the quotient search preserves reachability
//! and violation-existence, and every witness it returns is a genuine
//! execution of the quotient system (each step is `step` followed by `c`).
//!
//! This module provides the generic building blocks; model crates compose
//! them into concrete hooks (e.g. `election`'s anonymous-ring search uses
//! [`impossible_core::symmetry::canonical_rotation`]).

/// The canonical representative of `state`'s orbit under an explicit set of
/// process permutations.
///
/// `apply(state, perm)` must implement the group action: permute every
/// process-indexed component of the state by `perm` (where `perm[i]` is the
/// new index of process `i`). The representative is the `Ord`-minimum over
/// all listed permutations, so the caller controls the group (full symmetric
/// group, rotations only, a single swap, ...). Identity need not be listed;
/// `state` itself is always a candidate.
pub fn min_under_permutations<S, F>(state: &S, perms: &[Vec<usize>], apply: F) -> S
where
    S: Clone + Ord,
    F: Fn(&S, &[usize]) -> S,
{
    let mut best = state.clone();
    for p in perms {
        let cand = apply(state, p);
        if cand < best {
            best = cand;
        }
    }
    best
}

/// All `n!` permutations of `0..n`, in lexicographic order — the full
/// symmetric group for [`min_under_permutations`]. Deterministic order;
/// intended for small `n` (the finite instances the engines check).
pub fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    let mut used = vec![false; n];
    fn rec(n: usize, cur: &mut Vec<usize>, used: &mut Vec<bool>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == n {
            out.push(cur.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(n, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    cur.clear();
    rec(n, &mut cur, &mut used, &mut out);
    out
}

/// The `n` cyclic rotations of `0..n` (including identity) — the rotation
/// group of an anonymous ring.
pub fn rotations(n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|r| (0..n).map(|i| (i + r) % n).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_generators() {
        assert_eq!(all_permutations(3).len(), 6);
        assert_eq!(all_permutations(0), vec![Vec::<usize>::new()]);
        assert_eq!(rotations(3), vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]]);
    }

    #[test]
    fn min_under_swap_canonicalizes_pairs() {
        // State = per-process values; action of a permutation moves value at
        // i to position perm[i].
        let apply = |s: &Vec<u8>, p: &[usize]| {
            let mut t = vec![0u8; s.len()];
            for (i, &v) in s.iter().enumerate() {
                t[p[i]] = v;
            }
            t
        };
        let perms = all_permutations(2);
        assert_eq!(min_under_permutations(&vec![9u8, 1], &perms, apply), vec![1, 9]);
        assert_eq!(min_under_permutations(&vec![1u8, 9], &perms, apply), vec![1, 9]);
        // Idempotent.
        let c = min_under_permutations(&vec![9u8, 1], &perms, apply);
        assert_eq!(min_under_permutations(&c, &perms, apply), c);
    }
}

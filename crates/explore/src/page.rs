//! Delta+varint-compressed pages for spilled search state.
//!
//! External-memory BFS ([`crate::extmem`]) writes visited-set shards and
//! frontier partitions to disk and streams them back per level. The page
//! formats here are the durable half of that bargain, built on the
//! reversible [`Persist`] codec so checkpoint
//! snapshots and spill runs share one encoding:
//!
//! * **key pages** — a strictly-ascending list of 64-bit fingerprints as
//!   `count · first · deltas`, all LEB128 varints. `ShardedFpMap`'s
//!   `iter_ordered` already yields stored keys ascending, so deltas are
//!   small and the page compresses to a few bytes per key instead of 8;
//! * **run pages** — a key page plus a value block (each value via
//!   `Persist`, in key order). The key block is self-delimiting, so the
//!   per-level membership filter decodes *only* the keys and never pays
//!   for parent records it does not need;
//! * **frontier pages** — `(fingerprint, state)` records in traversal
//!   order. Frontier fingerprints are unsorted (traversal order is part of
//!   the determinism contract), so keys are plain varints, not deltas —
//!   delta-coding unsorted data would *grow* the page.
//!
//! Every decoder tolerates hostile input: truncation, overflowing varints,
//! non-ascending keys and lying length prefixes all surface as
//! [`PersistError::Malformed`], never a panic or an OOM-sized
//! pre-allocation.

use crate::persist::{Persist, PersistError};

/// Append `v` as an LEB128 varint (7 bits per byte, low group first,
/// high bit = continuation): 1 byte for values < 128, at most 10 bytes.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint, advancing `*pos` past it.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let Some(&byte) = buf.get(*pos) else {
            return Err(PersistError::Malformed("varint truncated"));
        };
        *pos += 1;
        let group = u64::from(byte & 0x7F);
        // The 10th byte may only carry the top bit of a u64.
        if i == 9 && group > 1 {
            return Err(PersistError::Malformed("varint overflow"));
        }
        v |= group << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(PersistError::Malformed("varint overflow"))
}

/// Encode a strictly-ascending key list as `count · first · deltas`.
///
/// The input **must** be strictly ascending — the decoder treats a zero
/// delta as corruption (debug builds assert; release builds produce a page
/// the decoder rejects, never a silently wrong one).
pub fn encode_key_page(keys: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(keys.len() + 10);
    write_key_block(&mut out, keys);
    out
}

/// Append a key block (`count · first · deltas`) to an open page.
fn write_key_block(out: &mut Vec<u8>, keys: &[u64]) {
    write_varint(out, keys.len() as u64);
    let mut prev = None;
    for &k in keys {
        match prev {
            None => write_varint(out, k),
            Some(p) => {
                debug_assert!(k > p, "key pages require strictly ascending keys");
                write_varint(out, k.wrapping_sub(p));
            }
        }
        prev = Some(k);
    }
}

/// Decode a key block, checking strict ascent and accumulator overflow.
fn read_key_block(buf: &[u8], pos: &mut usize) -> Result<Vec<u64>, PersistError> {
    let n = read_varint(buf, pos)?;
    // Hostile-length guard: every key costs at least one byte on disk.
    if n > (buf.len().saturating_sub(*pos) as u64) {
        return Err(PersistError::Malformed("key page count"));
    }
    let n = n as usize;
    let mut keys = Vec::with_capacity(n);
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let raw = read_varint(buf, pos)?;
        let k = match prev {
            None => raw,
            Some(p) => {
                if raw == 0 {
                    return Err(PersistError::Malformed("key page zero delta"));
                }
                p.checked_add(raw)
                    .ok_or(PersistError::Malformed("key page delta overflow"))?
            }
        };
        keys.push(k);
        prev = Some(k);
    }
    Ok(keys)
}

/// Decode a key page produced by [`encode_key_page`], consuming the whole
/// buffer (trailing bytes are malformed, not ignored).
pub fn decode_key_page(buf: &[u8]) -> Result<Vec<u64>, PersistError> {
    let mut pos = 0;
    let keys = read_key_block(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(PersistError::Malformed("key page trailing bytes"));
    }
    Ok(keys)
}

/// Encode a visited run page: ascending `(key, value)` entries as a key
/// block followed by the values in key order.
pub fn encode_run_page<V: Persist>(entries: &[(u64, V)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 3 + 10);
    let keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
    write_key_block(&mut out, &keys);
    for (_, v) in entries {
        v.write(&mut out);
    }
    out
}

/// Decode only a run page's key block — the per-level membership filter's
/// path, which never touches the value bytes.
pub fn run_page_keys(buf: &[u8]) -> Result<Vec<u64>, PersistError> {
    let mut pos = 0;
    read_key_block(buf, &mut pos)
}

/// Decode a full run page back to its `(key, value)` entries.
pub fn decode_run_page<V: Persist>(buf: &[u8]) -> Result<Vec<(u64, V)>, PersistError> {
    let mut pos = 0;
    let keys = read_key_block(buf, &mut pos)?;
    let mut entries = Vec::with_capacity(keys.len());
    for k in keys {
        entries.push((k, V::read(buf, &mut pos)?));
    }
    if pos != buf.len() {
        return Err(PersistError::Malformed("run page trailing bytes"));
    }
    Ok(entries)
}

/// Encode a frontier page: `(fingerprint, state)` records in traversal
/// order (order is preserved exactly — it is part of the report bytes).
pub fn encode_frontier_page<S: Persist>(items: &[(u64, S)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(items.len() * 4 + 10);
    write_varint(&mut out, items.len() as u64);
    for (fp, s) in items {
        write_varint(&mut out, *fp);
        s.write(&mut out);
    }
    out
}

/// Decode a frontier page back to its records, in encoded order.
pub fn decode_frontier_page<S: Persist>(buf: &[u8]) -> Result<Vec<(u64, S)>, PersistError> {
    let mut pos = 0;
    let n = read_varint(buf, &mut pos)?;
    if n > (buf.len().saturating_sub(pos) as u64) {
        return Err(PersistError::Malformed("frontier page count"));
    }
    let mut items = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let fp = read_varint(buf, &mut pos)?;
        items.push((fp, S::read(buf, &mut pos)?));
    }
    if pos != buf.len() {
        return Err(PersistError::Malformed("frontier page trailing bytes"));
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Parent;

    #[test]
    fn varints_round_trip_and_are_compact() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
        let mut out = Vec::new();
        write_varint(&mut out, 5);
        assert_eq!(out.len(), 1);
        let mut out = Vec::new();
        write_varint(&mut out, u64::MAX);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn varint_overflow_and_truncation_are_malformed() {
        // 11 continuation bytes can never be a u64.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
        // A 10th byte carrying more than the top bit overflows too.
        let mut buf = [0x80u8; 10];
        buf[9] = 0x02;
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos).is_err());
    }

    #[test]
    fn key_pages_round_trip_identity() {
        for keys in [
            vec![],
            vec![0u64],
            vec![u64::MAX],
            vec![1, 2, 3, 4, 5],
            vec![7, 1000, 1001, 1 << 40, u64::MAX],
        ] {
            let page = encode_key_page(&keys);
            assert_eq!(decode_key_page(&page).unwrap(), keys, "{keys:?}");
        }
    }

    #[test]
    fn dense_key_pages_compress_far_below_raw_width() {
        // Shard-ordered fingerprints stride by the shard count; the delta
        // coding should beat 8 bytes/key by a wide margin.
        let keys: Vec<u64> = (0..10_000u64).map(|i| 1_000_000 + i * 64).collect();
        let page = encode_key_page(&keys);
        assert!(
            page.len() < keys.len() * 2 + 16,
            "page is {} bytes for {} keys",
            page.len(),
            keys.len()
        );
    }

    #[test]
    fn corrupt_key_pages_are_rejected() {
        let page = encode_key_page(&[10, 20, 30]);
        for cut in 0..page.len() {
            assert!(decode_key_page(&page[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = page.clone();
        trailing.push(0);
        assert!(decode_key_page(&trailing).is_err());
        // Zero delta (a duplicate key) is corruption, not a quiet merge.
        let mut dup = Vec::new();
        write_varint(&mut dup, 2);
        write_varint(&mut dup, 10);
        write_varint(&mut dup, 0);
        assert!(matches!(
            decode_key_page(&dup),
            Err(PersistError::Malformed("key page zero delta"))
        ));
        // Delta pushing the accumulator past u64::MAX overflows.
        let mut over = Vec::new();
        write_varint(&mut over, 2);
        write_varint(&mut over, u64::MAX);
        write_varint(&mut over, 1);
        assert!(decode_key_page(&over).is_err());
        // A count larger than the page can hold is rejected before any
        // allocation of that size.
        let mut lying = Vec::new();
        write_varint(&mut lying, u64::MAX - 1);
        assert!(decode_key_page(&lying).is_err());
    }

    #[test]
    fn run_pages_round_trip_and_expose_keys_cheaply() {
        let entries: Vec<(u64, Parent<u8>)> = vec![
            (3, Parent::Root(0)),
            (90, Parent::Child { parent: 3, action: 2 }),
            (4000, Parent::Child { parent: 90, action: 9 }),
        ];
        let page = encode_run_page(&entries);
        assert_eq!(decode_run_page::<Parent<u8>>(&page).unwrap(), entries);
        assert_eq!(run_page_keys(&page).unwrap(), vec![3, 90, 4000]);
        for cut in 0..page.len() {
            assert!(decode_run_page::<Parent<u8>>(&page[..cut]).is_err());
        }
        let empty = encode_run_page::<Parent<u8>>(&[]);
        assert!(decode_run_page::<Parent<u8>>(&empty).unwrap().is_empty());
    }

    #[test]
    fn frontier_pages_preserve_traversal_order_exactly() {
        // Deliberately unsorted fingerprints: order must survive untouched.
        let items: Vec<(u64, Vec<u8>)> = vec![
            (900, vec![1, 2]),
            (3, vec![]),
            (u64::MAX, vec![0; 5]),
            (3, vec![9]), // duplicate fp is legal in a frontier page
        ];
        let page = encode_frontier_page(&items);
        assert_eq!(decode_frontier_page::<Vec<u8>>(&page).unwrap(), items);
        for cut in 0..page.len() {
            assert!(decode_frontier_page::<Vec<u8>>(&page[..cut]).is_err());
        }
        let mut trailing = page.clone();
        trailing.push(7);
        assert!(decode_frontier_page::<Vec<u8>>(&trailing).is_err());
    }
}

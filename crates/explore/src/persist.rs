//! The reversible little-endian byte codec shared by snapshots and spill.
//!
//! Deliberately *not* the [`crate::Encode`] trait: `Encode` feeds a one-way
//! hasher (its contract is injectivity, and the `encode-coverage` lint
//! audits completeness against that contract), while [`Persist`] is a
//! reversible byte codec whose contract is `read(write(x)) == x`.
//! Conflating the two would let a state type's fingerprint encoding
//! silently double as its wire format — the fields a fingerprint may fold
//! (because equality already identifies them) are exactly the fields a
//! durable encoding must not lose.
//!
//! The trait lived in `impossible-ckpt` first (PR 8's snapshot format);
//! it moved here when external-memory search grew a second consumer —
//! spilled visited/frontier pages (see [`crate::page`]) — that the
//! checkpoint crate's own pages now reuse, so "snapshot and spill share
//! one format" is a fact about the code, not a convention. `ckpt::codec`
//! re-exports everything and converts [`PersistError`] into its richer
//! `CkptError`.
//!
//! Everything is little-endian and length-prefixed: the byte stream for a
//! value is a pure function of the value, independent of platform, worker
//! count, or allocation history — the property the byte-identity contracts
//! (snapshot round trips, spilled-vs-resident report equality) bottom
//! out in.

use crate::search::Parent;
use impossible_core::explore::Truncation;

/// Decoding failed: the input is truncated or contains invalid bytes.
///
/// Carries the static name of the section that failed, so hostile input
/// yields a diagnosable error instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// Truncated input or an invalid byte in the named section.
    Malformed(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(what) => write!(f, "malformed encoding: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// A reversible little-endian byte codec: `read(write(x)) == x`, and every
/// encoding is self-delimiting (fixed width or length-prefixed), so codecs
/// compose by concatenation.
pub trait Persist: Sized {
    /// Append this value's canonical byte encoding to `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Decode a value from `buf` starting at `*pos`, advancing `*pos` past
    /// it. Errors with [`PersistError::Malformed`] on truncation or invalid
    /// bytes; never panics on hostile input.
    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError>;
}

/// Pull `n` bytes out of `buf` at `*pos`, or report what was missing.
pub fn take<'b>(
    buf: &'b [u8],
    pos: &mut usize,
    n: usize,
    what: &'static str,
) -> Result<&'b [u8], PersistError> {
    let end = pos.checked_add(n).ok_or(PersistError::Malformed(what))?;
    if end > buf.len() {
        return Err(PersistError::Malformed(what));
    }
    let bytes = &buf[*pos..end];
    *pos = end;
    Ok(bytes)
}

impl Persist for u8 {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        Ok(take(buf, pos, 1, "u8")?[0])
    }
}

impl Persist for u16 {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        let b = take(buf, pos, 2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
}

impl Persist for u32 {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        let b = take(buf, pos, 4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Persist for u64 {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        let b = take(buf, pos, 8, "u64")?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }
}

/// `usize` travels as `u64` — encodings must be readable across platforms
/// with different pointer widths (a count too large for the reading
/// platform is malformed, not truncated).
impl Persist for usize {
    fn write(&self, out: &mut Vec<u8>) {
        (*self as u64).write(out);
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        let n = u64::read(buf, pos)?;
        usize::try_from(n).map_err(|_| PersistError::Malformed("usize overflow"))
    }
}

impl Persist for bool {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        match u8::read(buf, pos)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Malformed("bool tag")),
        }
    }
}

impl Persist for String {
    fn write(&self, out: &mut Vec<u8>) {
        self.len().write(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        let n = usize::read(buf, pos)?;
        let bytes = take(buf, pos, n, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Malformed("string utf-8"))
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn write(&self, out: &mut Vec<u8>) {
        self.len().write(out);
        for item in self {
            item.write(out);
        }
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        let n = usize::read(buf, pos)?;
        // Guard the pre-allocation: a hostile length prefix must not OOM
        // before the (inevitable) truncation error surfaces. One byte per
        // element is the floor every `Persist` encoding meets.
        if n > buf.len().saturating_sub(*pos) {
            return Err(PersistError::Malformed("vec length"));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::read(buf, pos)?);
        }
        Ok(v)
    }
}

impl<T: Persist> Persist for Option<T> {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(x) => {
                out.push(1);
                x.write(out);
            }
        }
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        match u8::read(buf, pos)? {
            0 => Ok(None),
            1 => Ok(Some(T::read(buf, pos)?)),
            _ => Err(PersistError::Malformed("option tag")),
        }
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        Ok((A::read(buf, pos)?, B::read(buf, pos)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn write(&self, out: &mut Vec<u8>) {
        self.0.write(out);
        self.1.write(out);
        self.2.write(out);
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        Ok((A::read(buf, pos)?, B::read(buf, pos)?, C::read(buf, pos)?))
    }
}

/// Tagged encoding (1 = `States`, 2 = `Depth`, 3 = `Index`). Tag 0 is
/// reserved: `Option<Truncation>` in the snapshot header writes it for
/// `None`, so the bare encoding must never produce it.
impl Persist for Truncation {
    fn write(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Truncation::States => 1,
            Truncation::Depth => 2,
            Truncation::Index => 3,
        });
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        match u8::read(buf, pos)? {
            1 => Ok(Truncation::States),
            2 => Ok(Truncation::Depth),
            3 => Ok(Truncation::Index),
            _ => Err(PersistError::Malformed("truncation tag")),
        }
    }
}

/// Tagged encoding: 0 = `Root(initial index)`, 1 = `Child{parent, action}`.
impl<A: Persist> Persist for Parent<A> {
    fn write(&self, out: &mut Vec<u8>) {
        match self {
            Parent::Root(i) => {
                out.push(0);
                i.write(out);
            }
            Parent::Child { parent, action } => {
                out.push(1);
                parent.write(out);
                action.write(out);
            }
        }
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<Self, PersistError> {
        match u8::read(buf, pos)? {
            0 => Ok(Parent::Root(usize::read(buf, pos)?)),
            1 => Ok(Parent::Child {
                parent: u64::read(buf, pos)?,
                action: A::read(buf, pos)?,
            }),
            _ => Err(PersistError::Malformed("parent tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(x: T) {
        let mut out = Vec::new();
        x.write(&mut out);
        let mut pos = 0;
        let back = T::read(&out, &mut pos).expect("round trip");
        assert_eq!(back, x);
        assert_eq!(pos, out.len(), "decoder consumed exactly the encoding");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(String::from("quorum π ≥"));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(vec![(1u64, 2u8), (3, 4)]));
        round_trip(None::<u64>);
        round_trip((7u64, String::from("x"), vec![false, true]));
    }

    #[test]
    fn engine_enums_round_trip() {
        round_trip(Truncation::States);
        round_trip(Truncation::Depth);
        round_trip(Truncation::Index);
        round_trip(Parent::<u8>::Root(3));
        round_trip(Parent::Child {
            parent: 0xFEED_u64,
            action: 7u8,
        });
        let mut pos = 0;
        assert!(matches!(
            Truncation::read(&[0], &mut pos),
            Err(PersistError::Malformed("truncation tag"))
        ));
        let mut pos = 0;
        assert!(matches!(
            Parent::<u8>::read(&[9], &mut pos),
            Err(PersistError::Malformed("parent tag"))
        ));
    }

    #[test]
    fn truncation_is_malformed_not_panic() {
        let mut out = Vec::new();
        vec![1u64, 2, 3].write(&mut out);
        for cut in 0..out.len() {
            let mut pos = 0;
            let r = Vec::<u64>::read(&out[..cut], &mut pos);
            assert!(r.is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_early() {
        let mut out = Vec::new();
        (u64::MAX - 3).write(&mut out);
        let mut pos = 0;
        assert!(matches!(
            Vec::<u64>::read(&out, &mut pos),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn bad_tags_are_malformed() {
        let mut pos = 0;
        assert!(matches!(
            bool::read(&[9], &mut pos),
            Err(PersistError::Malformed("bool tag"))
        ));
        let mut pos = 0;
        assert!(matches!(
            Option::<u8>::read(&[2, 0], &mut pos),
            Err(PersistError::Malformed("option tag"))
        ));
    }

    #[test]
    fn encodings_are_little_endian_and_stable() {
        // The format doc in docs/CKPT.md quotes these exact bytes.
        let mut out = Vec::new();
        0x0102_0304u32.write(&mut out);
        assert_eq!(out, [0x04, 0x03, 0x02, 0x01]);
        let mut out = Vec::new();
        String::from("ok").write(&mut out);
        assert_eq!(out, [2, 0, 0, 0, 0, 0, 0, 0, b'o', b'k']);
    }
}
